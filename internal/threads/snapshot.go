package threads

import (
	"fmt"

	"dejavu/internal/heap"
)

// Snapshot is a deep copy of all scheduler state, used by the Igor-style
// checkpointing baseline and by the debugger's time travel.
type Snapshot struct {
	Threads  []Thread
	Tags     [][]bool
	ReadyQ   []int
	Current  int
	MonAddrs []heap.Addr
	Mons     []Monitor
	Timers   []timerEntry
	TimerSeq uint64
}

// Snapshot deep-copies the scheduler.
func (s *Scheduler) Snapshot() *Snapshot {
	snap := &Snapshot{
		ReadyQ:   append([]int(nil), s.readyQ...),
		Current:  s.current,
		Timers:   append([]timerEntry(nil), s.timers...),
		TimerSeq: s.timerSeq,
	}
	for _, t := range s.threads {
		snap.Threads = append(snap.Threads, *t)
		snap.Tags = append(snap.Tags, append([]bool(nil), t.Tags...))
	}
	for _, a := range s.monOrder {
		m := s.monitors[a]
		snap.MonAddrs = append(snap.MonAddrs, a)
		cp := *m
		cp.EntryQ = append([]int(nil), m.EntryQ...)
		cp.WaitQ = append([]int(nil), m.WaitQ...)
		snap.Mons = append(snap.Mons, cp)
	}
	return snap
}

// Restore reinstates a snapshot.
func (s *Scheduler) Restore(snap *Snapshot) {
	s.threads = s.threads[:0]
	for i := range snap.Threads {
		t := snap.Threads[i] // copy
		t.Tags = append([]bool(nil), snap.Tags[i]...)
		s.threads = append(s.threads, &t)
	}
	s.readyQ = append(s.readyQ[:0:0], snap.ReadyQ...)
	s.current = snap.Current
	s.timers = append(s.timers[:0:0], snap.Timers...)
	s.timerSeq = snap.TimerSeq
	s.monitors = make(map[heap.Addr]*Monitor, len(snap.Mons))
	s.monOrder = append(s.monOrder[:0:0], snap.MonAddrs...)
	for i, a := range snap.MonAddrs {
		m := snap.Mons[i] // copy
		m.EntryQ = append([]int(nil), snap.Mons[i].EntryQ...)
		m.WaitQ = append([]int(nil), snap.Mons[i].WaitQ...)
		s.monitors[a] = &m
	}
}

// Serialization for checkpoint files. The format is varint-based; decode
// validates counts against the remaining input.

type snapWriter struct{ buf []byte }

func (w *snapWriter) uv(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

func (w *snapWriter) sv(v int64) { w.uv(uint64(v)<<1 ^ uint64(v>>63)) }

func (w *snapWriter) b(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

type snapReader struct {
	data []byte
	err  error
}

func (r *snapReader) uv() uint64 {
	if r.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for i := 0; i < len(r.data); i++ {
		c := r.data[i]
		if c < 0x80 {
			r.data = r.data[i+1:]
			return v | uint64(c)<<shift
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	r.err = fmt.Errorf("threads: truncated snapshot")
	return 0
}

func (r *snapReader) sv() int64 {
	u := r.uv()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *snapReader) b() bool {
	if r.err != nil || len(r.data) == 0 {
		r.err = fmt.Errorf("threads: truncated snapshot")
		return false
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v == 1
}

// EncodeTo serializes the scheduler snapshot.
func (s *Snapshot) EncodeTo(buf *[]byte) {
	w := &snapWriter{buf: *buf}
	w.uv(uint64(len(s.Threads)))
	for i := range s.Threads {
		t := &s.Threads[i]
		w.uv(uint64(t.ID))
		w.uv(uint64(t.State))
		w.uv(uint64(t.StackSeg))
		w.sv(int64(t.FP))
		w.sv(int64(t.SP))
		w.uv(uint64(t.WaitingOn))
		w.sv(t.WakeAt)
		w.b(t.Interrupted)
		w.sv(int64(t.SavedRecursion))
		w.uv(t.YieldCount)
		w.uv(t.NYP)
		w.uv(t.EventCount)
		w.uv(uint64(t.MirrorObj))
		tags := s.Tags[i]
		w.uv(uint64(len(tags)))
		for _, tg := range tags {
			w.b(tg)
		}
	}
	w.uv(uint64(len(s.ReadyQ)))
	for _, id := range s.ReadyQ {
		w.uv(uint64(id))
	}
	w.sv(int64(s.Current))
	w.uv(uint64(len(s.Mons)))
	for i := range s.Mons {
		w.uv(uint64(s.MonAddrs[i]))
		m := &s.Mons[i]
		w.sv(int64(m.Owner))
		w.sv(int64(m.Recursion))
		w.uv(uint64(len(m.EntryQ)))
		for _, id := range m.EntryQ {
			w.uv(uint64(id))
		}
		w.uv(uint64(len(m.WaitQ)))
		for _, id := range m.WaitQ {
			w.uv(uint64(id))
		}
	}
	w.uv(uint64(len(s.Timers)))
	for _, e := range s.Timers {
		w.sv(e.WakeAt)
		w.uv(e.Seq)
		w.uv(uint64(e.TID))
	}
	w.uv(s.TimerSeq)
	*buf = w.buf
}

// DecodeSnapshot parses a snapshot encoded by EncodeTo, returning the
// unread remainder.
func DecodeSnapshot(data []byte) (*Snapshot, []byte, error) {
	r := &snapReader{data: data}
	s := &Snapshot{}
	n := r.uv()
	if r.err == nil && n > uint64(len(r.data)) {
		return nil, nil, fmt.Errorf("threads: snapshot thread count corrupt")
	}
	for i := uint64(0); i < n && r.err == nil; i++ {
		var t Thread
		t.ID = int(r.uv())
		t.State = State(r.uv())
		t.StackSeg = heap.Addr(r.uv())
		t.FP = int(r.sv())
		t.SP = int(r.sv())
		t.WaitingOn = heap.Addr(r.uv())
		t.WakeAt = r.sv()
		t.Interrupted = r.b()
		t.SavedRecursion = int(r.sv())
		t.YieldCount = r.uv()
		t.NYP = r.uv()
		t.EventCount = r.uv()
		t.MirrorObj = heap.Addr(r.uv())
		nt := r.uv()
		if r.err == nil && nt > uint64(len(r.data)) {
			return nil, nil, fmt.Errorf("threads: snapshot tag count corrupt")
		}
		var tags []bool
		if nt > 0 {
			tags = make([]bool, nt)
			for j := range tags {
				tags[j] = r.b()
			}
		}
		s.Threads = append(s.Threads, t)
		s.Tags = append(s.Tags, tags)
	}
	nq := r.uv()
	if r.err == nil && nq > uint64(len(r.data))+1 {
		return nil, nil, fmt.Errorf("threads: snapshot ready queue corrupt")
	}
	for i := uint64(0); i < nq && r.err == nil; i++ {
		s.ReadyQ = append(s.ReadyQ, int(r.uv()))
	}
	s.Current = int(r.sv())
	nm := r.uv()
	if r.err == nil && nm > uint64(len(r.data))+1 {
		return nil, nil, fmt.Errorf("threads: snapshot monitor count corrupt")
	}
	for i := uint64(0); i < nm && r.err == nil; i++ {
		s.MonAddrs = append(s.MonAddrs, heap.Addr(r.uv()))
		var m Monitor
		m.Owner = int(r.sv())
		m.Recursion = int(r.sv())
		ne := r.uv()
		for j := uint64(0); j < ne && r.err == nil; j++ {
			m.EntryQ = append(m.EntryQ, int(r.uv()))
		}
		nw := r.uv()
		for j := uint64(0); j < nw && r.err == nil; j++ {
			m.WaitQ = append(m.WaitQ, int(r.uv()))
		}
		s.Mons = append(s.Mons, m)
	}
	ntm := r.uv()
	if r.err == nil && ntm > uint64(len(r.data))+1 {
		return nil, nil, fmt.Errorf("threads: snapshot timer count corrupt")
	}
	for i := uint64(0); i < ntm && r.err == nil; i++ {
		var e timerEntry
		e.WakeAt = r.sv()
		e.Seq = r.uv()
		e.TID = int(r.uv())
		s.Timers = append(s.Timers, e)
	}
	s.TimerSeq = r.uv()
	if r.err != nil {
		return nil, nil, r.err
	}
	return s, r.data, nil
}
