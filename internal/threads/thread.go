// Package threads implements the VM's quasi-preemptive green-thread
// package: ready queue, per-object monitors with entry and wait queues,
// and a timer queue for sleep and timed wait.
//
// As in Jalapeño, this thread package is part of the virtual machine being
// replayed: all of its state is an ordinary, deterministic function of the
// event sequence. That is what makes programmer-visible thread switches
// (monitor contention, wait/notify) replay for free — only preemptive
// switches need to be logged, and those are handled by the DejaVu engine,
// not here.
package threads

import (
	"fmt"

	"dejavu/internal/heap"
)

// State is a thread's scheduling state.
type State uint8

const (
	Ready State = iota
	Running
	BlockedMonitor // blocked in monitorenter
	Waiting        // in a wait set, no timeout
	TimedWaiting   // in a wait set with a timeout
	Sleeping
	Terminated
)

var stateNames = [...]string{"ready", "running", "blocked", "waiting", "timed-waiting", "sleeping", "terminated"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Thread is one virtual machine thread. The interpreter stores its
// execution stack in a heap-resident int64 array (StackSeg) so that, as in
// Jalapeño, activation stacks are heap objects a remote debugger can read
// with raw memory peeks; Tags is the GC's shadow reference map for those
// slots.
type Thread struct {
	ID    int
	State State

	// Execution state, owned by the interpreter.
	StackSeg heap.Addr // int64-array heap object holding frames
	Tags     []bool    // per-slot reference map, aligned with StackSeg
	FP       int       // current frame base slot (-1 when no frame)
	SP       int       // next free stack slot

	// Scheduling state.
	WaitingOn      heap.Addr // monitor object while blocked or waiting
	WakeAt         int64     // wall-clock deadline for sleep/timed wait (ms)
	Interrupted    bool
	SavedRecursion int // monitor recursion saved across wait

	// DejaVu logical clock (§2.4): yield points executed by this thread
	// with the clock live, and the delta since the last preemptive switch.
	YieldCount uint64
	NYP        uint64

	// EventCount counts instructions executed by this thread.
	EventCount uint64

	// MirrorObj is the VM_Thread mirror object in the VM heap.
	MirrorObj heap.Addr

	// Shadow of the values last flushed into MirrorObj by the interpreter
	// (vm.flushMirror), letting it skip the heap stores when nothing
	// changed. Skipping an equal-valued store never alters heap bytes, so
	// the image stays bit-identical. MirValid is false until the first
	// flush; checkpoint decode leaves it false, forcing a full (idempotent)
	// flush after restore.
	MirFP     int
	MirSP     int
	MirState  State
	MirYields uint64
	MirValid  bool
}

// Runnable reports whether the thread can be scheduled.
func (t *Thread) Runnable() bool { return t.State == Ready || t.State == Running }
