package threads

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dejavu/internal/heap"
)

func newSched(n int) (*Scheduler, []*Thread) {
	s := NewScheduler()
	var ts []*Thread
	for i := 0; i < n; i++ {
		t := s.NewThread()
		s.Enqueue(t)
		ts = append(ts, t)
	}
	return s, ts
}

func TestFIFODispatch(t *testing.T) {
	s, ts := newSched(3)
	for i := 0; i < 3; i++ {
		got := s.PickNext()
		if got != ts[i] {
			t.Fatalf("dispatch %d: got thread %d", i, got.ID)
		}
		s.Terminate(got)
	}
	if s.PickNext() != nil {
		t.Fatal("expected empty ready queue")
	}
}

func TestMonitorContention(t *testing.T) {
	s, ts := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	if !s.MonEnter(t0, obj) {
		t.Fatal("uncontended enter failed")
	}
	if !s.MonEnter(t0, obj) {
		t.Fatal("recursive enter failed")
	}
	// t1 contends and blocks.
	t1 := s.PickNext()
	if t1 != ts[1] {
		t.Fatalf("picked %d", t1.ID)
	}
	if s.MonEnter(t1, obj) {
		t.Fatal("contended enter should block")
	}
	if t1.State != BlockedMonitor {
		t.Fatalf("t1 state = %v", t1.State)
	}
	// Releasing one recursion level keeps ownership.
	if err := s.MonExit(t0, obj); err != nil {
		t.Fatal(err)
	}
	if s.MonitorState(obj).Owner != t0.ID {
		t.Fatal("ownership lost after partial exit")
	}
	// Full release hands the monitor to t1.
	if err := s.MonExit(t0, obj); err != nil {
		t.Fatal(err)
	}
	m := s.MonitorState(obj)
	if m.Owner != t1.ID || t1.State != Ready {
		t.Fatalf("owner=%d state=%v", m.Owner, t1.State)
	}
}

func TestMonExitNotOwnerFails(t *testing.T) {
	s, ts := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	if err := s.MonExit(ts[1], obj); err == nil {
		t.Fatal("expected not-owner error")
	}
	if err := s.MonExit(ts[1], heap.Addr(128)); err == nil {
		t.Fatal("expected unknown-monitor error")
	}
}

func TestWaitNotify(t *testing.T) {
	s, ts := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.MonEnter(t0, obj) // recursion 2
	if err := s.Wait(t0, obj, -1); err != nil {
		t.Fatal(err)
	}
	if t0.State != Waiting || t0.SavedRecursion != 2 {
		t.Fatalf("state=%v savedRec=%d", t0.State, t0.SavedRecursion)
	}
	// Monitor is free now; t1 can acquire and notify.
	t1 := s.PickNext()
	if t1 != ts[1] {
		t.Fatalf("picked %d", t1.ID)
	}
	if !s.MonEnter(t1, obj) {
		t.Fatal("monitor should be free during wait")
	}
	id, err := s.Notify(t1, obj)
	if err != nil || id != t0.ID {
		t.Fatalf("notify -> %d, %v", id, err)
	}
	if t0.State != BlockedMonitor {
		t.Fatalf("notified thread state = %v (must reacquire)", t0.State)
	}
	// When t1 exits, t0 reacquires with its saved recursion.
	s.MonExit(t1, obj)
	m := s.MonitorState(obj)
	if m.Owner != t0.ID || m.Recursion != 2 {
		t.Fatalf("owner=%d recursion=%d", m.Owner, m.Recursion)
	}
	if t0.State != Ready {
		t.Fatalf("t0 state = %v", t0.State)
	}
}

func TestNotifyNoWaiter(t *testing.T) {
	s, _ := newSched(1)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	id, err := s.Notify(t0, obj)
	if err != nil || id != -1 {
		t.Fatalf("got %d, %v", id, err)
	}
}

func TestNotifyAllFIFOOrder(t *testing.T) {
	s, ts := newSched(4)
	obj := heap.Addr(64)
	// Threads 0..2 wait in order; thread 3 notifies all.
	for i := 0; i < 3; i++ {
		ti := s.PickNext()
		s.MonEnter(ti, obj)
		s.Wait(ti, obj, -1)
	}
	t3 := s.PickNext()
	s.MonEnter(t3, obj)
	n, err := s.NotifyAll(t3, obj)
	if err != nil || n != 3 {
		t.Fatalf("notifyAll -> %d, %v", n, err)
	}
	s.MonExit(t3, obj)
	// Wakeups re-acquire in original wait order as the monitor is released.
	order := []int{}
	for i := 0; i < 3; i++ {
		w := s.PickNext()
		order = append(order, w.ID)
		s.MonExit(w, obj)
		s.Terminate(w)
	}
	if !reflect.DeepEqual(order, []int{ts[0].ID, ts[1].ID, ts[2].ID}) {
		t.Fatalf("wake order = %v", order)
	}
}

func TestSleepAndTimers(t *testing.T) {
	s, ts := newSched(2)
	t0 := s.PickNext()
	s.Sleep(t0, 100)
	t1 := s.PickNext()
	s.Sleep(t1, 50)
	if wake, ok := s.NextWake(); !ok || wake != 50 {
		t.Fatalf("next wake = %d, %v", wake, ok)
	}
	if n := s.ExpireTimers(49); n != 0 {
		t.Fatalf("woke %d early", n)
	}
	if n := s.ExpireTimers(50); n != 1 {
		t.Fatalf("woke %d, want 1", n)
	}
	if next := s.PickNext(); next != ts[1] {
		t.Fatalf("woke wrong thread %d", next.ID)
	}
	if n := s.ExpireTimers(1000); n != 1 {
		t.Fatalf("woke %d, want 1", n)
	}
}

func TestTimerTieBreakIsFIFO(t *testing.T) {
	s, ts := newSched(3)
	for i := 0; i < 3; i++ {
		ti := s.PickNext()
		s.Sleep(ti, 10) // identical deadlines
	}
	s.ExpireTimers(10)
	for i := 0; i < 3; i++ {
		got := s.PickNext()
		if got != ts[i] {
			t.Fatalf("wake %d: got thread %d", i, got.ID)
		}
		s.Terminate(got)
	}
}

func TestTimedWaitExpiry(t *testing.T) {
	s, ts := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.Wait(t0, obj, 200)
	if t0.State != TimedWaiting {
		t.Fatalf("state = %v", t0.State)
	}
	// Timeout fires while monitor is free: t0 reacquires immediately.
	s.ExpireTimers(200)
	if t0.State != Ready {
		t.Fatalf("state after expiry = %v", t0.State)
	}
	if m := s.MonitorState(obj); m.Owner != t0.ID {
		t.Fatalf("owner = %d", m.Owner)
	}
	_ = ts
}

func TestTimedWaitExpiryContended(t *testing.T) {
	s, _ := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.Wait(t0, obj, 200)
	t1 := s.PickNext()
	s.MonEnter(t1, obj)
	// Timeout fires while t1 holds the monitor: t0 joins the entry queue.
	s.ExpireTimers(200)
	if t0.State != BlockedMonitor {
		t.Fatalf("state = %v", t0.State)
	}
	s.MonExit(t1, obj)
	if m := s.MonitorState(obj); m.Owner != t0.ID {
		t.Fatalf("owner = %d", m.Owner)
	}
}

func TestNotifyCancelsTimer(t *testing.T) {
	s, _ := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.Wait(t0, obj, 500)
	t1 := s.PickNext()
	s.MonEnter(t1, obj)
	s.Notify(t1, obj)
	s.MonExit(t1, obj)
	if _, ok := s.NextWake(); ok {
		t.Fatal("timer should have been cancelled by notify")
	}
	// Expiring past the old deadline must not double-wake.
	if n := s.ExpireTimers(10000); n != 0 {
		t.Fatalf("phantom wake: %d", n)
	}
}

func TestInterruptWaiting(t *testing.T) {
	s, _ := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.Wait(t0, obj, -1)
	s.Interrupt(t0)
	if !t0.Interrupted {
		t.Fatal("interrupted flag not set")
	}
	// Monitor free: t0 reacquires directly.
	if t0.State != Ready {
		t.Fatalf("state = %v", t0.State)
	}
}

func TestInterruptSleeping(t *testing.T) {
	s, _ := newSched(1)
	t0 := s.PickNext()
	s.Sleep(t0, 1000)
	s.Interrupt(t0)
	if t0.State != Ready || !t0.Interrupted {
		t.Fatalf("state=%v interrupted=%v", t0.State, t0.Interrupted)
	}
	if _, ok := s.NextWake(); ok {
		t.Fatal("timer not cancelled")
	}
}

func TestDeadlockDetection(t *testing.T) {
	s, ts := newSched(2)
	a, b := heap.Addr(64), heap.Addr(128)
	t0 := s.PickNext()
	s.MonEnter(t0, a)
	s.Preempt(t0)
	t1 := s.PickNext()
	s.MonEnter(t1, b)
	s.MonEnter(t1, a) // blocks
	t0b := s.PickNext()
	if t0b != ts[0] {
		t.Fatalf("picked %d", t0b.ID)
	}
	s.MonEnter(t0b, b) // blocks: classic deadlock
	if s.PickNext() != nil {
		t.Fatal("no thread should be runnable")
	}
	if err := s.CheckDeadlock(); err == nil {
		t.Fatal("deadlock not detected")
	}
}

func TestMonitorTableBounded(t *testing.T) {
	s, _ := newSched(1)
	t0 := s.PickNext()
	for i := 1; i <= 1000; i++ {
		obj := heap.Addr(i * 64)
		s.MonEnter(t0, obj)
		s.MonExit(t0, obj)
	}
	if n := s.NumMonitors(); n != 0 {
		t.Fatalf("idle monitors retained: %d", n)
	}
}

func TestVisitRootsUpdatesMonitorKeys(t *testing.T) {
	s, _ := newSched(2)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	t0.MirrorObj = 16
	// Simulate a GC that moves everything by +1024. (Stack segments are
	// presented separately as heap.StackRoots, not via VisitRoots.)
	s.VisitRoots(func(slot *heap.Addr) {
		if *slot != 0 {
			*slot += 1024
		}
	})
	if t0.MirrorObj != 16+1024 {
		t.Fatal("thread refs not updated")
	}
	if m := s.MonitorState(heap.Addr(64 + 1024)); m == nil || m.Owner != t0.ID {
		t.Fatal("monitor not rekeyed after GC")
	}
	if err := s.MonExit(t0, heap.Addr(64+1024)); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, _ := newSched(3)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.Wait(t0, obj, 500)
	t1 := s.PickNext()
	s.MonEnter(t1, obj)
	snap := s.Snapshot()

	// Mutate heavily.
	s.Notify(t1, obj)
	s.MonExit(t1, obj)
	s.Terminate(t1)
	s.PickNext()

	s.Restore(snap)
	t0r, _ := s.Thread(0)
	t1r, _ := s.Thread(1)
	if t0r.State != TimedWaiting || t1r.State != Running {
		t.Fatalf("states after restore: %v %v", t0r.State, t1r.State)
	}
	if m := s.MonitorState(obj); m == nil || m.Owner != t1r.ID || len(m.WaitQ) != 1 {
		t.Fatal("monitor state not restored")
	}
	if wake, ok := s.NextWake(); !ok || wake != 500 {
		t.Fatal("timers not restored")
	}
	// The restored scheduler must be fully independent of post-snapshot
	// aliasing: operating on it must not corrupt the snapshot.
	s.Notify(t1r, obj)
	s.Restore(snap)
	if m := s.MonitorState(obj); len(m.WaitQ) != 1 {
		t.Fatal("snapshot aliased by restored scheduler")
	}
}

func TestStateString(t *testing.T) {
	if Ready.String() != "ready" || Terminated.String() != "terminated" {
		t.Fatal("state names wrong")
	}
}

// TestSchedulerInvariantProperty drives the scheduler with random (but
// legal) operation sequences and checks the structural invariant after
// every step: each live thread is in exactly one place — running, in the
// ready queue, in exactly one monitor's entry or wait queue, or parked on
// a timer.
func TestSchedulerInvariantProperty(t *testing.T) {
	check := func(s *Scheduler, objs []heap.Addr) error {
		locations := map[int][]string{}
		if c := s.Current(); c != nil {
			locations[c.ID] = append(locations[c.ID], "running")
			if c.State != Running {
				return fmt.Errorf("current thread %d has state %v", c.ID, c.State)
			}
		}
		seenReady := map[int]bool{}
		for _, t := range s.Threads() {
			if t.State == Ready {
				seenReady[t.ID] = true
			}
		}
		// Ready queue entries must be Ready-state threads, no duplicates.
		readyCount := map[int]int{}
		for _, t := range s.Threads() {
			_ = t
		}
		for _, obj := range objs {
			m := s.MonitorState(obj)
			if m == nil {
				continue
			}
			for _, id := range m.EntryQ {
				th, _ := s.Thread(id)
				if th.State != BlockedMonitor {
					return fmt.Errorf("entryQ thread %d state %v", id, th.State)
				}
				locations[id] = append(locations[id], "entryQ")
			}
			for _, id := range m.WaitQ {
				th, _ := s.Thread(id)
				if th.State != Waiting && th.State != TimedWaiting {
					return fmt.Errorf("waitQ thread %d state %v", id, th.State)
				}
				locations[id] = append(locations[id], "waitQ")
			}
			if m.Owner != -1 {
				th, _ := s.Thread(m.Owner)
				if th.State == Terminated {
					return fmt.Errorf("monitor owned by terminated thread %d", m.Owner)
				}
			}
		}
		for id, locs := range locations {
			if len(locs) > 1 {
				return fmt.Errorf("thread %d in multiple places: %v", id, locs)
			}
		}
		_ = readyCount
		_ = seenReady
		return nil
	}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		objs := []heap.Addr{64, 128, 192}
		for i := 0; i < 4; i++ {
			s.Enqueue(s.NewThread())
		}
		now := int64(0)
		held := map[int][]heap.Addr{} // thread -> monitors it owns (stack)
		for step := 0; step < 400; step++ {
			cur := s.Current()
			if cur == nil {
				now += int64(rng.Intn(50))
				s.ExpireTimers(now)
				cur = s.PickNext()
				if cur == nil {
					if s.CheckDeadlock() != nil {
						return true // detected: acceptable terminal state
					}
					if _, ok := s.NextWake(); !ok {
						break
					}
					continue
				}
			}
			switch rng.Intn(8) {
			case 0: // monenter a random object
				obj := objs[rng.Intn(len(objs))]
				if s.MonEnter(cur, obj) {
					held[cur.ID] = append(held[cur.ID], obj)
				}
			case 1: // monexit the most recent
				if hs := held[cur.ID]; len(hs) > 0 {
					obj := hs[len(hs)-1]
					if err := s.MonExit(cur, obj); err != nil {
						t.Log(err)
						return false
					}
					held[cur.ID] = hs[:len(hs)-1]
				}
			case 2: // wait on an owned monitor (fully releases it!)
				if hs := held[cur.ID]; len(hs) > 0 {
					obj := hs[len(hs)-1]
					if err := s.Wait(cur, obj, -1); err != nil {
						t.Log(err)
						return false
					}
					held[cur.ID] = nil // wait releases all recursion on obj
					// (we only track one object deep here: drop all for simplicity)
				}
			case 3: // timed wait
				if hs := held[cur.ID]; len(hs) > 0 {
					obj := hs[len(hs)-1]
					if err := s.Wait(cur, obj, now+int64(rng.Intn(30))); err != nil {
						t.Log(err)
						return false
					}
					held[cur.ID] = nil
				}
			case 4: // notify
				if hs := held[cur.ID]; len(hs) > 0 {
					if _, err := s.Notify(cur, hs[len(hs)-1]); err != nil {
						t.Log(err)
						return false
					}
				}
			case 5: // sleep (only when holding nothing, to avoid deadlock noise)
				if len(held[cur.ID]) == 0 {
					s.Sleep(cur, now+int64(rng.Intn(40)))
				}
			case 6: // preempt
				s.Preempt(cur)
			case 7: // interrupt a random thread
				ts := s.Threads()
				s.Interrupt(ts[rng.Intn(len(ts))])
			}
			if err := check(s, objs); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockReport(t *testing.T) {
	s, _ := newSched(2)
	a, b := heap.Addr(64), heap.Addr(128)
	t0 := s.PickNext()
	s.MonEnter(t0, a)
	s.Preempt(t0)
	t1 := s.PickNext()
	s.MonEnter(t1, b)
	s.MonEnter(t1, a)
	t0b := s.PickNext()
	s.MonEnter(t0b, b)
	rep := s.DeadlockReport()
	if !strings.Contains(rep, "thread 0 blocked on monitor @128 (owned by thread 1)") ||
		!strings.Contains(rep, "thread 1 blocked on monitor @64 (owned by thread 0)") {
		t.Fatalf("report:\n%s", rep)
	}
	// A healthy scheduler reports nothing.
	s2, _ := newSched(1)
	s2.PickNext()
	if s2.DeadlockReport() != "no blocked threads" {
		t.Fatal("unexpected blocked threads")
	}
}

func TestSnapshotCodecRoundTrip(t *testing.T) {
	s, _ := newSched(3)
	obj := heap.Addr(64)
	t0 := s.PickNext()
	s.MonEnter(t0, obj)
	s.Wait(t0, obj, 500)
	t1 := s.PickNext()
	s.MonEnter(t1, obj)
	t1.Tags = []bool{true, false, true}
	t1.SP = 3
	snap := s.Snapshot()
	var buf []byte
	snap.EncodeTo(&buf)
	dec, rest, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	// Thread.Tags is carried in Snapshot.Tags, not inside the Thread
	// structs; blank it for the struct comparison.
	a := append([]Thread(nil), snap.Threads...)
	bThreads := append([]Thread(nil), dec.Threads...)
	for i := range a {
		a[i].Tags = nil
		bThreads[i].Tags = nil
	}
	if !reflect.DeepEqual(a, bThreads) {
		t.Fatalf("threads differ:\n%+v\n%+v", a, bThreads)
	}
	if !reflect.DeepEqual(snap.Tags, dec.Tags) || !reflect.DeepEqual(snap.ReadyQ, dec.ReadyQ) ||
		snap.Current != dec.Current || !reflect.DeepEqual(snap.Mons, dec.Mons) ||
		!reflect.DeepEqual(snap.MonAddrs, dec.MonAddrs) || !reflect.DeepEqual(snap.Timers, dec.Timers) ||
		snap.TimerSeq != dec.TimerSeq {
		t.Fatal("snapshot fields differ after codec round trip")
	}
	// Restoring the decoded snapshot yields a working scheduler.
	s2 := NewScheduler()
	for i := 0; i < 3; i++ {
		s2.NewThread()
	}
	s2.Restore(dec)
	if m := s2.MonitorState(obj); m == nil || m.Owner != 1 || len(m.WaitQ) != 1 {
		t.Fatal("restored monitor state wrong")
	}
	// Corruption never panics.
	for i := 0; i < len(buf); i += 7 {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x3c
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decode panicked at byte %d: %v", i, r)
				}
			}()
			_, _, _ = DecodeSnapshot(mut)
		}()
	}
}
