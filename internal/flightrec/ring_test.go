// Flight-recorder acceptance: a ring-window flush triggered at a fault
// replays bit-identically to the corresponding suffix of a full-journal
// reference recording, and the flush protocol survives a power cut at
// every lifecycle point.
package flightrec_test

import (
	"errors"
	"fmt"
	"testing"

	"dejavu/internal/bytecode"
	"dejavu/internal/core"
	"dejavu/internal/faults/memfs"
	"dejavu/internal/flightrec"
	"dejavu/internal/replaycheck"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

// flightProg is an event-dense workload (clock/native/callback traffic on
// top of preemptions): enough logged entries for the ring to evict well
// past its window before the injected fault fires.
func flightProg() *bytecode.Program { return workloads.Events(200) }

const (
	flightSegEvents = 16
	flightWindow    = 64
	flightFaultAt   = 5000 // injected fault: event budget exhausted here
)

// flightRecordOptions returns identical record options for the ring run
// and the full-journal reference run — determinism makes the two separate
// executions bit-identical.
func flightRecordOptions() replaycheck.Options {
	return replaycheck.Options{
		Seed: 11, HostRand: 11, KeepEvents: 64,
		PreemptMin: 2, PreemptMax: 9, HeapBytes: 1 << 17,
		ChunkBytes: 24, MaxEvents: flightFaultAt, RotateEvents: flightSegEvents,
	}
}

func flightReplayOptions() replaycheck.Options {
	return replaycheck.Options{HeapBytes: 1 << 17, MaxEvents: flightFaultAt, KeepEvents: 64}
}

// recordThroughRing runs the workload once with the ring as its recording
// surface, expecting the injected budget fault.
func recordThroughRing(t *testing.T, o flightrec.Options) (*flightrec.Ring, *replaycheck.Result) {
	t.Helper()
	prog := flightProg()
	ring, err := flightrec.NewRing(vm.ProgramHash(prog), o)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	rec, err := replaycheck.RecordSink(prog, ring, flightRecordOptions())
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !errors.Is(rec.RunErr, vm.ErrEventBudget) {
		t.Fatalf("expected injected budget fault, got %v", rec.RunErr)
	}
	if got := flightrec.Classify(rec.RunErr); got != "budget" {
		t.Fatalf("Classify(%v) = %q, want budget", rec.RunErr, got)
	}
	return ring, rec
}

// TestFlightFlushReplaysToFault is the determinism core: flush the ring's
// window at the fault, replay it (auto-seeded at its origin), and compare
// bit-for-bit against the same suffix of a full-journal reference
// recording replayed from the same checkpoint.
func TestFlightFlushReplaysToFault(t *testing.T) {
	prog := flightProg()
	ring, _ := recordThroughRing(t, flightrec.Options{
		WindowEvents: flightWindow, SegmentEvents: flightSegEvents, ChunkBytes: 24,
	})

	fs := memfs.New()
	info, err := ring.FlushTo(fs, "budget")
	if err != nil {
		t.Fatalf("FlushTo: %v", err)
	}
	if info.Origin == 0 || info.Evicted == 0 {
		t.Fatalf("expected an evicting window flush, got origin %d, evicted %d", info.Origin, info.Evicted)
	}
	if !info.Complete {
		t.Fatalf("run ended (at the fault); flush should carry the end event")
	}
	if got := info.Events + info.Switches; got < flightWindow {
		t.Fatalf("window underfull: %d retained entries, want >= %d", got, flightWindow)
	}

	// The flushed journal parses, reports its origin, and replays to the
	// fault without being told where to seed.
	j, err := trace.OpenJournal(fs)
	if err != nil {
		t.Fatalf("OpenJournal(flush): %v", err)
	}
	if j.Origin() != info.Origin {
		t.Fatalf("journal origin %d, flush said %d", j.Origin(), info.Origin)
	}
	res, _, err := replaycheck.ReplayJournal(prog, fs, flightReplayOptions())
	if err != nil {
		t.Fatalf("replay flush: %v", err)
	}
	if !errors.Is(res.RunErr, vm.ErrEventBudget) {
		t.Fatalf("flush replay did not reach the fault: %v", res.RunErr)
	}

	// Reference: an identical recording into a full segmented journal,
	// replayed seeded at the flush origin. Same checkpoint, same suffix,
	// same digest.
	refFS := memfs.New()
	ref, err := replaycheck.RecordJournal(prog, refFS, flightRecordOptions())
	if err != nil {
		t.Fatalf("reference record: %v", err)
	}
	if !errors.Is(ref.RunErr, vm.ErrEventBudget) {
		t.Fatalf("reference run diverged from ring run: %v", ref.RunErr)
	}
	refRes, seed, err := replaycheck.ReplayJournalFrom(prog, refFS, info.Origin, flightReplayOptions())
	if err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	if seed.VMEvents != info.Origin {
		t.Fatalf("reference seeded at %d, flush origin %d (rotation boundaries should match)", seed.VMEvents, info.Origin)
	}
	if refRes.Digest.Sum() != res.Digest.Sum() {
		t.Fatalf("flush window diverged from reference suffix: %x vs %x\nflush tail: %v\nref tail: %v",
			res.Digest.Sum(), refRes.Digest.Sum(), res.Digest.Recent(), refRes.Digest.Recent())
	}
	if refRes.Events != res.Events {
		t.Fatalf("event counts differ: flush %d, reference %d", res.Events, refRes.Events)
	}
}

// TestFlightFlushDeterminismMatrix sweeps the determinism property across
// sync policies and window sizes (the E20 matrix's correctness half).
func TestFlightFlushDeterminismMatrix(t *testing.T) {
	prog := flightProg()
	for _, sync := range []trace.SyncPolicy{trace.SyncNone, trace.SyncChunk, trace.SyncEvent} {
		for _, window := range []int{32, 64, 256} {
			t.Run(fmt.Sprintf("sync=%v/window=%d", sync, window), func(t *testing.T) {
				o := flightRecordOptions()
				o.Sync = sync
				ring, err := flightrec.NewRing(vm.ProgramHash(prog), flightrec.Options{
					WindowEvents: window, SegmentEvents: flightSegEvents, ChunkBytes: 24,
				})
				if err != nil {
					t.Fatalf("NewRing: %v", err)
				}
				rec, err := replaycheck.RecordSink(prog, ring, o)
				if err != nil {
					t.Fatalf("record: %v", err)
				}
				if !errors.Is(rec.RunErr, vm.ErrEventBudget) {
					t.Fatalf("expected budget fault, got %v", rec.RunErr)
				}
				fs := memfs.New()
				info, err := ring.FlushTo(fs, "budget")
				if err != nil {
					t.Fatalf("FlushTo: %v", err)
				}
				res, _, err := replaycheck.ReplayJournal(prog, fs, flightReplayOptions())
				if err != nil {
					t.Fatalf("replay flush: %v", err)
				}
				if !errors.Is(res.RunErr, vm.ErrEventBudget) {
					t.Fatalf("flush replay did not reach the fault: %v", res.RunErr)
				}
				refFS := memfs.New()
				if _, err := replaycheck.RecordJournal(prog, refFS, o); err != nil {
					t.Fatalf("reference record: %v", err)
				}
				refRes, _, err := replaycheck.ReplayJournalFrom(prog, refFS, info.Origin, flightReplayOptions())
				if err != nil {
					t.Fatalf("reference replay: %v", err)
				}
				if refRes.Digest.Sum() != res.Digest.Sum() {
					t.Fatalf("digest mismatch: flush %x, reference %x", res.Digest.Sum(), refRes.Digest.Sum())
				}
			})
		}
	}
}

// TestFlightFlushFromStart: a window large enough to never evict flushes
// an ordinary journal — origin zero, replayable from the very beginning.
func TestFlightFlushFromStart(t *testing.T) {
	prog := flightProg()
	ring, rec := recordThroughRing(t, flightrec.Options{
		WindowEvents: 1 << 20, SegmentEvents: flightSegEvents, ChunkBytes: 24,
	})
	fs := memfs.New()
	info, err := ring.FlushTo(fs, "budget")
	if err != nil {
		t.Fatalf("FlushTo: %v", err)
	}
	if info.Origin != 0 || info.Evicted != 0 {
		t.Fatalf("expected a from-zero flush, got origin %d, evicted %d", info.Origin, info.Evicted)
	}
	res, _, err := replaycheck.ReplayJournal(prog, fs, flightReplayOptions())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !errors.Is(res.RunErr, vm.ErrEventBudget) {
		t.Fatalf("replay did not reach the fault: %v", res.RunErr)
	}
	if res.Digest.Sum() != rec.Digest.Sum() {
		t.Fatalf("from-zero flush replay diverged: %x vs %x", res.Digest.Sum(), rec.Digest.Sum())
	}
}

// TestFlightFreezeStopsEviction: a frozen ring pins its window — a race
// hit freezes immediately, recording continues, and the flush still holds
// everything from the freeze point through the fault.
func TestFlightFreezeStopsEviction(t *testing.T) {
	prog := flightProg()
	ring, err := flightrec.NewRing(vm.ProgramHash(prog), flightrec.Options{
		WindowEvents: flightWindow, SegmentEvents: flightSegEvents, ChunkBytes: 24,
	})
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	ring.Freeze() // freeze before any recording: nothing may ever be evicted
	rec, err := replaycheck.RecordSink(prog, ring, flightRecordOptions())
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	if !errors.Is(rec.RunErr, vm.ErrEventBudget) {
		t.Fatalf("expected budget fault, got %v", rec.RunErr)
	}
	if ring.Evicted() != 0 {
		t.Fatalf("frozen ring evicted %d segments", ring.Evicted())
	}
	fs := memfs.New()
	info, err := ring.FlushTo(fs, "race")
	if err != nil {
		t.Fatalf("FlushTo: %v", err)
	}
	if info.Origin != 0 {
		t.Fatalf("frozen-from-start flush should start at zero, got origin %d", info.Origin)
	}
	res, _, err := replaycheck.ReplayJournal(prog, fs, flightReplayOptions())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Digest.Sum() != rec.Digest.Sum() {
		t.Fatalf("frozen flush replay diverged: %x vs %x", res.Digest.Sum(), rec.Digest.Sum())
	}
}

// TestFlightFlushIdempotent: a second flush of the same ring writes the
// same window again.
func TestFlightFlushIdempotent(t *testing.T) {
	prog := flightProg()
	ring, _ := recordThroughRing(t, flightrec.Options{
		WindowEvents: flightWindow, SegmentEvents: flightSegEvents, ChunkBytes: 24,
	})
	fs1, fs2 := memfs.New(), memfs.New()
	i1, err := ring.FlushTo(fs1, "budget")
	if err != nil {
		t.Fatalf("first flush: %v", err)
	}
	i2, err := ring.FlushTo(fs2, "manual")
	if err != nil {
		t.Fatalf("second flush: %v", err)
	}
	if i1.Origin != i2.Origin || i1.Events != i2.Events || i1.Bytes != i2.Bytes {
		t.Fatalf("flushes differ: %+v vs %+v", i1, i2)
	}
	r1, _, err := replaycheck.ReplayJournal(prog, fs1, flightReplayOptions())
	if err != nil {
		t.Fatalf("replay 1: %v", err)
	}
	r2, _, err := replaycheck.ReplayJournal(prog, fs2, flightReplayOptions())
	if err != nil {
		t.Fatalf("replay 2: %v", err)
	}
	if r1.Digest.Sum() != r2.Digest.Sum() {
		t.Fatalf("re-flush diverged: %x vs %x", r1.Digest.Sum(), r2.Digest.Sum())
	}
}

// TestClassify pins the fault taxonomy.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{errors.New("plain"), ""},
		{fmt.Errorf("run: %w", vm.ErrEventBudget), "budget"},
		{&vm.VMError{ThreadID: 1, Method: "main", PC: 3, Reason: errors.New("boom")}, "trap"},
		{fmt.Errorf("replay: %w", &trace.DivergenceError{Index: 9, Expected: 4, Found: 5}), "divergence"},
		{fmt.Errorf("watchdog: %w", core.ErrStalled), "stall"},
	}
	for _, c := range cases {
		if got := flightrec.Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
	if flightrec.IsFault(nil) || !flightrec.IsFault(fmt.Errorf("%w", vm.ErrEventBudget)) {
		t.Fatalf("IsFault misclassifies")
	}
}
