// Fault-triggered flush: persist the ring's retained window as a
// self-contained segmented journal.
//
// Layout. A window whose pre-history was evicted cannot pretend to start at
// instruction zero, so the flush renumbers the retained segments to 1..N
// and writes a synthetic empty segment 0 (a valid DVS1 container holding no
// events) purely to satisfy the journal's consecutive-indexing invariant.
// Checkpoint 1 is the window-start snapshot, and the manifest carries an
// `origin` directive naming the first replayable instruction — readers must
// seed at or after it, never from zero. A window that still reaches back to
// the true start flushes as an ordinary journal with no origin.
//
// Atomicity. FlushTo writes every file as a dot-prefixed temporary (names
// starting with "." are rejected by manifest validation and ignored by
// OpenJournal, so they are invisible), fsyncs it, then renames into place
// in an order chosen so every crash cut lands in a safe state:
//
//  1. checkpoint files, ascending — without a manifest they are inert;
//  2. segment files in REVERSE index order, segment 0 LAST — OpenJournal
//     treats "segment 0 present, no manifest" as an all-tail salvage from
//     instruction zero, which would be wrong for an origin window, so
//     segment 0 must not appear before everything behind it is in place,
//     and even then the worst case is an empty salvage (the synthetic
//     segment holds nothing), which fails closed;
//  3. MANIFEST last — the commit point. Only once it lands does the
//     directory parse as the flushed journal.
//
// Flush wraps FlushTo in the production discipline: write into a fresh
// sibling temp directory, then publish it with a single atomic rename.
package flightrec

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"dejavu/internal/obs"
	"dejavu/internal/trace"
)

// FlushInfo describes one completed flush.
type FlushInfo struct {
	Reason   string `json:"reason"`
	Origin   uint64 `json:"origin"`   // first replayable instruction (0 = from the start)
	Segments int    `json:"segments"` // retained window segments (excluding the synthetic placeholder)
	Events   int    `json:"events"`   // data events in the window
	Switches int    `json:"switches"` // switch entries in the window
	Bytes    int64  `json:"bytes"`    // window trace bytes written
	Evicted  int    `json:"evicted"`  // segments dropped over the ring's lifetime
	Complete bool   `json:"complete"` // recording reached its end event before the flush
}

// FlushTo freezes and seals the ring, then persists the retained window
// onto fs using the crash-ordered protocol above. It is idempotent over
// the ring state: a second flush writes the same window again (to the same
// or another fs).
func (r *Ring) FlushTo(fs trace.FS, reason string) (*FlushInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frozen = true
	if !r.sealed {
		r.sealed = true
		if r.cur != nil {
			r.sealCurLocked()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("flightrec: ring in error state: %w", r.err)
	}
	if len(r.segs) == 0 {
		return nil, errors.New("flightrec: nothing recorded")
	}

	base := r.segs[0].index
	shift := 0
	man := trace.Manifest{ProgHash: r.progHash, Complete: r.ended}
	var segFiles, ckFiles []pendingFile
	if base > 0 {
		shift = 1
		man.Origin = r.segs[0].ck.vmEvents
		empty, err := emptySegment(r.progHash)
		if err != nil {
			return nil, err
		}
		man.Segments = append(man.Segments, trace.SegmentInfo{
			Index: 0, Name: trace.SegmentFileName(0), Bytes: int64(len(empty)),
		})
		segFiles = append(segFiles, pendingFile{trace.SegmentFileName(0), empty})
	}
	info := &FlushInfo{Reason: reason, Origin: man.Origin, Segments: len(r.segs),
		Evicted: r.evicted, Complete: r.ended}
	for i, s := range r.segs {
		fi := i + shift
		man.Segments = append(man.Segments, trace.SegmentInfo{
			Index: fi, Name: trace.SegmentFileName(fi),
			Events: s.events, Switches: s.switches, Bytes: int64(len(s.data)),
		})
		segFiles = append(segFiles, pendingFile{trace.SegmentFileName(fi), s.data})
		if s.ck != nil {
			man.Checkpoints = append(man.Checkpoints, trace.CheckpointInfo{
				Index: fi, Name: trace.CheckpointFileName(fi), VMEvents: s.ck.vmEvents,
			})
			ckFiles = append(ckFiles, pendingFile{
				trace.CheckpointFileName(fi),
				trace.EncodeCheckpoint(r.progHash, trace.Checkpoint{
					Index: fi, VMEvents: s.ck.vmEvents, BoundaryNYP: s.ck.boundaryNYP, State: s.ck.state,
				}),
			})
		}
		info.Events += s.events
		info.Switches += s.switches
		info.Bytes += int64(len(s.data))
	}

	// Stage every file as an invisible dot-temp first…
	all := append(append([]pendingFile{}, ckFiles...), segFiles...)
	all = append(all, pendingFile{manifestName, man.Encode()})
	for _, pf := range all {
		if err := writeTemp(fs, pf); err != nil {
			return nil, err
		}
	}
	// …then rename in the crash-safe order: checkpoints, segments highest
	// index first (segment 0 last), manifest as the commit point.
	for _, pf := range ckFiles {
		if err := fs.Rename("."+pf.name, pf.name); err != nil {
			return nil, fmt.Errorf("flightrec: publish %s: %w", pf.name, err)
		}
	}
	for i := len(segFiles) - 1; i >= 0; i-- {
		if err := fs.Rename("."+segFiles[i].name, segFiles[i].name); err != nil {
			return nil, fmt.Errorf("flightrec: publish %s: %w", segFiles[i].name, err)
		}
	}
	if err := fs.Rename("."+manifestName, manifestName); err != nil {
		return nil, fmt.Errorf("flightrec: publish manifest: %w", err)
	}

	r.opts.Obs.Counter(obs.Label("dv_flight_flushes_total", "reason", reason)).Inc()
	r.opts.Obs.Counter("dv_flight_flush_bytes_total").Add(uint64(info.Bytes))
	return info, nil
}

// manifestName mirrors the trace package's manifest file name; the journal
// format owns it, the flight recorder merely writes it last.
const manifestName = "MANIFEST"

type pendingFile struct {
	name string
	data []byte
}

func writeTemp(fs trace.FS, pf pendingFile) error {
	f, err := fs.Create("." + pf.name)
	if err != nil {
		return fmt.Errorf("flightrec: stage %s: %w", pf.name, err)
	}
	if _, err := f.Write(pf.data); err != nil {
		f.Close()
		return fmt.Errorf("flightrec: stage %s: %w", pf.name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("flightrec: stage %s: %w", pf.name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flightrec: stage %s: %w", pf.name, err)
	}
	return nil
}

// emptySegment builds the synthetic segment 0: a well-formed DVS1 container
// holding no events, so readers that open it see a valid header and an
// immediate end marker.
func emptySegment(progHash uint64) ([]byte, error) {
	var buf bytes.Buffer
	w, err := trace.NewStreamWriterOptions(&buf, progHash, trace.StreamOptions{})
	if err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Flush persists the window as journal directory dir (which must not yet
// exist) via a sibling temp directory and one atomic rename, so dir either
// appears as a complete flushed journal or not at all.
func (r *Ring) Flush(dir, reason string) (*FlushInfo, error) {
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return nil, fmt.Errorf("flightrec: flush dir: %w", err)
	}
	tmp, err := os.MkdirTemp(parent, ".flight-")
	if err != nil {
		return nil, fmt.Errorf("flightrec: flush temp dir: %w", err)
	}
	fs, err := trace.NewDirFS(tmp)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	info, err := r.FlushTo(fs, reason)
	if err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, dir); err != nil {
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("flightrec: publish %s: %w", dir, err)
	}
	return info, nil
}
