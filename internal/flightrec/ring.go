// Package flightrec implements the always-on flight recorder: a bounded
// in-memory ring journal layered on the segmented journal's checkpoint
// machinery. The ring records continuously at low cost, retaining only a
// rolling window — the newest in-window boundary checkpoint plus the
// segments behind it — and evicting older sealed segments from memory. When
// a fault fires (engine trap, replay divergence, watchdog stall, race-
// detector hit), the ring is frozen and its window flushed to disk as a
// self-contained segmented journal that replays from its own snapshot.
//
// The ring is a drop-in recording surface: it implements trace.Sink (the
// engine streams events into it) and vm.JournalSink (the VM drives rotation
// at instruction boundaries, handing over the snapshot that seeds the next
// segment). Because every retained segment run starts at a checkpoint the
// ring also retained, a flush is always replayable — the flushed manifest
// carries an `origin` marker telling readers the pre-window history is
// gone and replay must seed at the window start.
package flightrec

import (
	"bytes"
	"errors"
	"sync"

	"dejavu/internal/obs"
	"dejavu/internal/trace"
)

// DefaultWindowEvents is the retention window when Options names none.
const DefaultWindowEvents = 4096

// Options sizes a Ring.
type Options struct {
	// WindowEvents retains at least this many logged entries (data events
	// plus switches). Zero with WindowBytes also zero selects
	// DefaultWindowEvents.
	WindowEvents int
	// WindowBytes retains at least this many encoded trace bytes (0 = no
	// byte window).
	WindowBytes int64
	// SegmentEvents is the in-memory rotation granularity — how many logged
	// entries before the ring asks the VM for a boundary checkpoint. Zero
	// derives a quarter of the window, so eviction tracks the window
	// closely without checkpointing on every event.
	SegmentEvents int
	// ChunkBytes sets the per-segment stream chunking (0 = trace default).
	ChunkBytes int
	// Obs receives the ring's metrics (nil = disabled).
	Obs *obs.Registry
}

// memCk is an in-memory boundary checkpoint: the snapshot that seeds the
// segment it is attached to.
type memCk struct {
	state       []byte
	vmEvents    uint64
	boundaryNYP uint64
}

// memSeg is one sealed in-memory segment.
type memSeg struct {
	index    int // original recording index
	data     []byte
	events   int // data events
	switches int
	ck       *memCk // checkpoint seeding this segment (nil only for index 0)
}

func (s *memSeg) entries() int { return s.events + s.switches }

// Ring is the bounded in-memory journal. All methods are safe for
// concurrent use: the recording VM drives the sink and rotation from its
// goroutine while fault handlers (signal, session control plane) may
// freeze or flush from another.
type Ring struct {
	progHash  uint64
	opts      Options
	segEvents int
	segBytes  int64

	mu       sync.Mutex
	cur      *trace.StreamWriter
	curBuf   *bytes.Buffer
	curIndex int
	curEv    int    // logged entries in the open segment
	curCk    *memCk // checkpoint seeding the open segment
	segs     []memSeg
	agg      trace.Stats // lifetime totals, including evicted segments
	evicted  int
	frozen   bool
	sealed   bool
	ended    bool // the recording reached its end event
	err      error

	mEvict *obs.Counter
	mSegs  *obs.Gauge
	mBytes *obs.Gauge
}

// NewRing creates a ring for a program identified by progHash.
func NewRing(progHash uint64, o Options) (*Ring, error) {
	if o.WindowEvents <= 0 && o.WindowBytes <= 0 {
		o.WindowEvents = DefaultWindowEvents
	}
	r := &Ring{progHash: progHash, opts: o}
	r.segEvents = o.SegmentEvents
	if r.segEvents <= 0 {
		if o.WindowEvents > 0 {
			r.segEvents = o.WindowEvents / 4
			if r.segEvents < 1 {
				r.segEvents = 1
			}
		} else {
			r.segBytes = o.WindowBytes / 4
			if r.segBytes < 1 {
				r.segBytes = 1
			}
		}
	}
	r.mEvict = o.Obs.Counter("dv_flight_evictions_total")
	r.mSegs = o.Obs.Gauge("dv_flight_window_segments")
	r.mBytes = o.Obs.Gauge("dv_flight_window_bytes")
	r.agg = trace.Stats{Events: map[trace.Kind]int{}, BytesByKind: map[trace.Kind]int{}}
	if err := r.openLocked(0, nil); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Ring) setErr(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

func (r *Ring) openLocked(i int, ck *memCk) error {
	buf := &bytes.Buffer{}
	w, err := trace.NewStreamWriterOptions(buf, r.progHash, trace.StreamOptions{ChunkBytes: r.opts.ChunkBytes})
	if err != nil {
		return err
	}
	r.cur, r.curBuf, r.curIndex, r.curCk, r.curEv = w, buf, i, ck, 0
	return nil
}

// Sink implementation. After the final seal (flush) further events are
// dropped — the recording is over.

// Switch implements trace.Sink.
func (r *Ring) Switch(nyp uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Switch(nyp)
		r.curEv++
	}
}

// Clock implements trace.Sink.
func (r *Ring) Clock(v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Clock(v)
		r.curEv++
	}
}

// Native implements trace.Sink.
func (r *Ring) Native(id int, vals []int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Native(id, vals)
		r.curEv++
	}
}

// Input implements trace.Sink.
func (r *Ring) Input(b []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Input(b)
		r.curEv++
	}
}

// Callback implements trace.Sink.
func (r *Ring) Callback(cb int, params []int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.Callback(cb, params)
		r.curEv++
	}
}

// End implements trace.Sink: the engine emits it when the recording truly
// ends — including runs cut short by a trap, which End still finalizes.
// A flush after End may mark its manifest complete; a mid-run flush must
// not (its replay stops with partial-trace semantics at the flush point).
func (r *Ring) End() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cur != nil {
		r.cur.End()
	}
	r.ended = true
}

// Stats implements trace.Sink: lifetime totals, including evicted segments.
func (r *Ring) Stats() trace.Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := trace.Stats{Events: map[trace.Kind]int{}, BytesByKind: map[trace.Kind]int{}}
	addStats(&out, r.agg)
	if r.cur != nil {
		addStats(&out, r.cur.Stats())
	}
	return out
}

func addStats(into *trace.Stats, s trace.Stats) {
	for k, v := range s.Events {
		into.Events[k] += v
	}
	for k, v := range s.BytesByKind {
		into.BytesByKind[k] += v
	}
	into.TotalBytes += s.TotalBytes
}

// RotatePending implements vm.JournalSink: the ring asks for a boundary
// checkpoint once the open segment reaches the rotation granularity.
// Frozen rings never rotate — the window is pinned for flushing.
func (r *Ring) RotatePending() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil || r.frozen || r.sealed || r.cur == nil {
		return false
	}
	if r.segEvents > 0 && r.curEv >= r.segEvents {
		return true
	}
	if r.segBytes > 0 && int64(r.cur.Stats().TotalBytes) >= r.segBytes {
		return true
	}
	return false
}

// Rotate implements vm.JournalSink: seal the open segment in memory, start
// the next one seeded by the VM's snapshot, and evict sealed segments that
// have aged out of the window.
func (r *Ring) Rotate(state []byte, vmEvents, boundaryNYP uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sealed {
		return errors.New("flightrec: ring already flushed")
	}
	if r.err != nil {
		return r.err
	}
	r.sealCurLocked()
	ck := &memCk{
		state:       append([]byte(nil), state...),
		vmEvents:    vmEvents,
		boundaryNYP: boundaryNYP,
	}
	if err := r.openLocked(r.segs[len(r.segs)-1].index+1, ck); err != nil {
		r.setErr(err)
		return r.err
	}
	r.evictLocked()
	r.publishLocked()
	return r.err
}

// sealCurLocked closes the open segment and appends it to the sealed list.
func (r *Ring) sealCurLocked() {
	r.setErr(r.cur.Close())
	st := r.cur.Stats()
	addStats(&r.agg, st)
	events := 0
	for k, v := range st.Events {
		if k != trace.EvSwitch {
			events += v
		}
	}
	r.segs = append(r.segs, memSeg{
		index:    r.curIndex,
		data:     r.curBuf.Bytes(),
		events:   events,
		switches: st.Events[trace.EvSwitch],
		ck:       r.curCk,
	})
	r.cur, r.curBuf = nil, nil
}

// evictLocked drops sealed segments from the front while the remaining
// window (later sealed segments plus the open one) still covers every
// configured retention target. The segment seeding the remaining window
// always keeps its checkpoint, so a flush stays replayable.
func (r *Ring) evictLocked() {
	for len(r.segs) > 0 {
		remEntries := r.curEv
		remBytes := int64(r.cur.Stats().TotalBytes)
		for i := 1; i < len(r.segs); i++ {
			remEntries += r.segs[i].entries()
			remBytes += int64(len(r.segs[i].data))
		}
		if r.opts.WindowEvents > 0 && remEntries < r.opts.WindowEvents {
			return
		}
		if r.opts.WindowBytes > 0 && remBytes < r.opts.WindowBytes {
			return
		}
		r.segs[0] = memSeg{} // release the segment's memory
		r.segs = r.segs[1:]
		r.evicted++
		r.mEvict.Inc()
	}
}

func (r *Ring) publishLocked() {
	n, b := len(r.segs), int64(0)
	for _, s := range r.segs {
		b += int64(len(s.data))
	}
	if r.cur != nil {
		n++
		b += int64(r.cur.Stats().TotalBytes)
	}
	r.mSegs.Set(int64(n))
	r.mBytes.Set(b)
}

// Freeze pins the ring: rotation and eviction stop, so the window at the
// moment of the fault survives until it is flushed. Recording continues
// into the open segment — a race hit freezes immediately but the run keeps
// going, and the flush at run end carries everything through the fault.
// Freeze is idempotent.
func (r *Ring) Freeze() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frozen = true
}

// Frozen reports whether the ring has been frozen.
func (r *Ring) Frozen() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.frozen
}

// Evicted returns how many sealed segments have been dropped.
func (r *Ring) Evicted() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Err returns the ring's sticky error.
func (r *Ring) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}
