// Flush crash matrix: cut the flush's filesystem op tape at every
// lifecycle point (each metadata boundary, ±1 unit, and mid-write) and
// assert every resulting directory state fails closed:
//
//   - it is not a journal (OpenJournal refuses), or
//   - it parses and replays cleanly — either all the way to the recorded
//     fault with a digest bit-identical to the fully flushed window, or to
//     an explicit partial-trace/seek stop. Never a silent divergence, and
//     never a committed manifest with anything but the full window behind
//     it.
package flightrec_test

import (
	"errors"
	"testing"

	"dejavu/internal/core"
	"dejavu/internal/faults/memfs"
	"dejavu/internal/flightrec"
	"dejavu/internal/replaycheck"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
)

// crashCuts returns the budget sweep: every op boundary, one unit either
// side, and the midpoint of every write (torn-write territory).
func crashCuts(tape []memfs.FSOp) []int64 {
	cuts := map[int64]bool{0: true}
	var at int64
	for _, op := range tape {
		u := op.Units()
		if op.Kind == memfs.OpWrite && u > 1 {
			cuts[at+u/2] = true
		}
		at += u
		cuts[at] = true
		cuts[at-1] = true
		cuts[at+1] = true
	}
	out := make([]int64, 0, len(cuts))
	for c := range cuts {
		if c >= 0 && c <= at {
			out = append(out, c)
		}
	}
	return out
}

func TestFlightFlushCrashMatrix(t *testing.T) {
	prog := flightProg()
	ring, _ := recordThroughRing(t, flightrec.Options{
		WindowEvents: flightWindow, SegmentEvents: flightSegEvents, ChunkBytes: 24,
	})

	fs := memfs.New()
	info, err := ring.FlushTo(fs, "budget")
	if err != nil {
		t.Fatalf("FlushTo: %v", err)
	}
	if info.Origin == 0 {
		t.Fatalf("want an origin window for the crash matrix, got a from-zero flush")
	}
	tape := fs.Ops()

	// The fully flushed journal's replay digest is the reference.
	want, _, err := replaycheck.ReplayJournal(prog, fs, flightReplayOptions())
	if err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	if !errors.Is(want.RunErr, vm.ErrEventBudget) {
		t.Fatalf("reference replay did not reach the fault: %v", want.RunErr)
	}

	var full, refused, partial int
	for _, cut := range crashCuts(tape) {
		cfs := memfs.BuildFS(tape, cut)
		j, err := trace.OpenJournal(cfs)
		if err != nil {
			refused++ // fails closed: not (yet) a journal
			continue
		}
		// Anything OpenJournal accepts must replay without surprises.
		res, _, rerr := replaycheck.ReplayJournal(prog, cfs, flightReplayOptions())
		if rerr != nil {
			// Structured refusal at setup (e.g. an origin journal whose
			// checkpoint has not landed yet) is a clean stop.
			refused++
			continue
		}
		switch {
		case errors.Is(res.RunErr, vm.ErrEventBudget):
			// Replayed all the way to the recorded fault: this must be the
			// complete window, bit for bit.
			if res.Digest.Sum() != want.Digest.Sum() {
				t.Fatalf("cut %d: replay reached the fault with a diverging digest (%x vs %x)",
					cut, res.Digest.Sum(), want.Digest.Sum())
			}
			if j.Origin() != info.Origin {
				t.Fatalf("cut %d: full replay from origin %d, want %d", cut, j.Origin(), info.Origin)
			}
			full++
		case errors.Is(res.RunErr, core.ErrPartialTrace):
			// An incomplete cut (e.g. the synthetic segment 0 landed but the
			// manifest did not) salvages as an empty or prefix tail and stops
			// explicitly. Fails closed.
			partial++
		case res.RunErr == nil && res.Events == 0:
			// Nothing replayable at all (empty salvage of the synthetic
			// placeholder).
			partial++
		default:
			t.Fatalf("cut %d: unexpected replay outcome: RunErr=%v events=%d", cut, res.RunErr, res.Events)
		}
	}
	if full == 0 {
		t.Fatalf("no cut produced the fully flushed journal (tape sweep is broken)")
	}
	// The commit point is the manifest rename — exactly the final unit, so
	// cuts at or past it (and only those) see the full journal.
	t.Logf("crash matrix: %d cuts — %d full, %d refused, %d partial", full+refused+partial, full, refused, partial)
}

// TestFlightFlushCrashNeverHalfRenamed pins the specific hazard from the
// satellite audit: no cut may yield a directory that OpenJournal accepts
// with a committed manifest naming files that are missing or torn.
func TestFlightFlushCrashNeverHalfRenamed(t *testing.T) {
	ring, _ := recordThroughRing(t, flightrec.Options{
		WindowEvents: flightWindow, SegmentEvents: flightSegEvents, ChunkBytes: 24,
	})
	fs := memfs.New()
	if _, err := ring.FlushTo(fs, "budget"); err != nil {
		t.Fatalf("FlushTo: %v", err)
	}
	tape := fs.Ops()
	for _, cut := range crashCuts(tape) {
		cfs := memfs.BuildFS(tape, cut)
		j, err := trace.OpenJournal(cfs)
		if err != nil || len(j.Manifest.Segments) == 0 {
			continue
		}
		// A parsed manifest means commit: every named file must be present
		// and loadable right now.
		for _, s := range j.Manifest.Segments {
			if _, ok := cfs.ReadFile(s.Name); !ok {
				t.Fatalf("cut %d: manifest names missing segment %s", cut, s.Name)
			}
		}
		for _, c := range j.Manifest.Checkpoints {
			if _, err := j.LoadCheckpoint(c); err != nil {
				t.Fatalf("cut %d: manifest names unloadable checkpoint %s: %v", cut, c.Name, err)
			}
		}
	}
}
