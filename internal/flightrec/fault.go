// Fault taxonomy: which run errors count as flush triggers, and how they
// are labeled in metrics, flush reasons, and the minimizer's oracle.
package flightrec

import (
	"errors"

	"dejavu/internal/core"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
)

// Classify maps a run error to its fault class: "trap" (VM error at an
// instruction), "divergence" (replay departed from the recording), "stall"
// (replay watchdog), "budget" (event budget exhausted), or "" for non-fault
// errors (including nil). The class doubles as the flush reason label on
// dv_flight_flushes_total and as the minimizer's fault signature.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	var de *trace.DivergenceError
	if errors.As(err, &de) {
		return "divergence"
	}
	if errors.Is(err, core.ErrStalled) {
		return "stall"
	}
	if errors.Is(err, vm.ErrEventBudget) {
		return "budget"
	}
	var ve *vm.VMError
	if errors.As(err, &ve) {
		return "trap"
	}
	return ""
}

// IsFault reports whether err is a flush-triggering fault.
func IsFault(err error) bool { return Classify(err) != "" }
