// Package core implements the DejaVu engine: record and replay of
// non-deterministic events with symmetric instrumentation, following
// section 2 of the paper.
//
// The engine divides operations into deterministic ones (ordinary
// instruction execution — ignored in both modes) and non-deterministic
// ones (preemptive thread switches, wall-clock reads, native results,
// input, callbacks — recorded during record mode and regenerated during
// replay mode).
package core

import (
	"io"
	"math/rand"
	"sync/atomic"
	"time"

	"dejavu/internal/obs"
	"dejavu/internal/trace"
)

// Mode selects the engine behavior.
type Mode int

const (
	// ModeOff runs without instrumentation effects (the "precise" native
	// execution DejaVu's overhead is compared against).
	ModeOff Mode = iota
	// ModeRecord captures non-deterministic results into a trace.
	ModeRecord
	// ModeReplay substitutes recorded results for non-deterministic
	// operations, reproducing the recorded execution exactly.
	ModeReplay
)

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeRecord:
		return "record"
	case ModeReplay:
		return "replay"
	default:
		return "mode(?)"
	}
}

// TimeSource supplies wall-clock values (milliseconds). Reading it is the
// archetypal non-deterministic event (the paper's Date() in Fig. 1 C/D).
type TimeSource interface {
	NowMillis() int64
}

// RealTime reads the host wall clock.
type RealTime struct{}

// NowMillis implements TimeSource.
func (RealTime) NowMillis() int64 { return time.Now().UnixMilli() }

// FakeTime is a deterministic time source for experiments that must be
// reproducible end to end: it starts at Base and advances Step per read.
// From the VM's point of view it is still non-deterministic state (the
// program cannot predict it), so it is recorded like any wall clock.
type FakeTime struct {
	Base int64
	Step int64
	n    int64
}

// NowMillis implements TimeSource.
func (f *FakeTime) NowMillis() int64 {
	v := f.Base + f.Step*f.n
	f.n++
	return v
}

// JitterTime is a pseudo-random walk time source: like a real clock, the
// interval between reads varies, driving timed-wait races differently from
// run to run (seeded so experiments can name their runs).
type JitterTime struct {
	rng *rand.Rand
	now int64
}

// NewJitterTime creates a JitterTime starting at base.
func NewJitterTime(seed, base int64) *JitterTime {
	return &JitterTime{rng: rand.New(rand.NewSource(seed)), now: base}
}

// NowMillis implements TimeSource.
func (j *JitterTime) NowMillis() int64 {
	j.now += j.rng.Int63n(7)
	return j.now
}

// Preemptor models the timer interrupt: Pending reports (and clears)
// whether the preemptive-hardware bit has been set since the last check.
// It is consulted only at yield points, and only in record/off modes —
// replay ignores it entirely (Fig. 2B).
type Preemptor interface {
	Pending() bool
}

// NeverPreempt disables preemption; all remaining thread switches are
// deterministic (the property tested by E8's no-preemption invariant).
type NeverPreempt struct{}

// Pending implements Preemptor.
func (NeverPreempt) Pending() bool { return false }

// HostTimer sets an atomic flag from a real timer goroutine, exactly like
// Jalapeño's periodic timer interrupt setting preemptiveHardwareBit: the
// interpreted program observes it at an unpredictable yield point.
type HostTimer struct {
	flag atomic.Bool
	stop chan struct{}
}

// StartHostTimer launches the timer goroutine.
func StartHostTimer(interval time.Duration) *HostTimer {
	h := &HostTimer{stop: make(chan struct{})}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.flag.Store(true)
			case <-h.stop:
				return
			}
		}
	}()
	return h
}

// Pending implements Preemptor.
func (h *HostTimer) Pending() bool { return h.flag.Swap(false) }

// Stop terminates the timer goroutine.
func (h *HostTimer) Stop() { close(h.stop) }

// SeededPreemptor fires after a pseudo-random number of yield points.
// It plays the role of the asynchronous timer in reproducible experiments:
// arbitrary with respect to program state (which is all the paper's
// mechanism requires of the interrupt), yet nameable by seed, so a test
// can record under seed s and verify replay without rerunning the timer.
type SeededPreemptor struct {
	rng      *rand.Rand
	min, max int
	left     int
}

// NewSeededPreemptor fires every [min,max] yield points, pseudo-randomly.
func NewSeededPreemptor(seed int64, min, max int) *SeededPreemptor {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	p := &SeededPreemptor{rng: rand.New(rand.NewSource(seed)), min: min, max: max}
	p.reload()
	return p
}

func (p *SeededPreemptor) reload() {
	p.left = p.min + p.rng.Intn(p.max-p.min+1)
}

// Pending implements Preemptor.
func (p *SeededPreemptor) Pending() bool {
	p.left--
	if p.left <= 0 {
		p.reload()
		return true
	}
	return false
}

// ScriptedPreemptor fires at an exact, pre-computed set of yield points.
// The trace minimizer uses it to re-execute a recording with a *subset* of
// its original preemption switches: record mode consults Pending exactly
// once per live yield point, so firing at the n-th consultation reproduces
// the n-th global yield position of the original schedule. Everything else
// held equal (time source, host randomness, input), the schedule — and
// hence the execution — is a pure function of the fire set.
type ScriptedPreemptor struct {
	fire map[uint64]bool
	n    uint64
}

// NewScriptedPreemptor fires at the given global yield positions
// (1-based: position k means the k-th Pending consultation fires).
func NewScriptedPreemptor(positions []uint64) *ScriptedPreemptor {
	p := &ScriptedPreemptor{fire: make(map[uint64]bool, len(positions))}
	for _, v := range positions {
		p.fire[v] = true
	}
	return p
}

// Pending implements Preemptor.
func (p *ScriptedPreemptor) Pending() bool {
	p.n++
	return p.fire[p.n]
}

// Consulted returns how many yield points have consulted this preemptor.
func (p *ScriptedPreemptor) Consulted() uint64 { return p.n }

// Host is the VM surface the engine's symmetric side effects run against:
// instrumentation-owned allocation and stack growth (§2.4).
type Host interface {
	// AllocCaptureBuffer allocates the engine's capture buffer in the VM
	// heap, so instrumentation allocation is visible to — and symmetric
	// for — the garbage collector.
	AllocCaptureBuffer(bytes int) error
	// EnsureStackHeadroom eagerly grows the current thread's activation
	// stack when fewer than slots are free, equalizing stack-overflow
	// points between modes.
	EnsureStackHeadroom(slots int) error
}

// Config assembles an engine.
type Config struct {
	Mode     Mode
	Time     TimeSource
	Preempt  Preemptor
	TraceIn  []byte    // replay input (required in ModeReplay unless TraceSrc is set)
	ProgHash uint64    // program identity check
	Input    io.Reader // environment input for the readline native

	// TraceSink, when set, receives record-mode events instead of the
	// default in-memory Writer — e.g. a trace.StreamWriter over a file, so
	// the trace never lives in memory. The caller owns closing it.
	TraceSink trace.Sink
	// TraceSrc, when set, supplies replay-mode events instead of decoding
	// TraceIn — e.g. a trace.StreamReader. Streaming sources are not
	// seekable, so engine snapshots are unavailable over them.
	TraceSrc trace.Source

	// Symmetry switches. All default to on; the E9 ablations turn them
	// off one at a time to demonstrate the resulting divergence.
	LiveClockGuard bool // exclude instrumentation yields from the logical clock
	SymmetricAlloc bool // allocate the capture buffer in both modes
	EagerStackGrow bool // grow stacks to one heuristic threshold in both modes

	// CaptureBufBytes sizes the symmetric capture buffer.
	CaptureBufBytes int

	// WarmupIO performs the paper's I/O warm-up during Begin: write a
	// temporary file and immediately read it back, in BOTH modes, so the
	// input and output paths are exercised identically whether the engine
	// will be writing (record) or reading (replay) — §2.4 "Symmetry in
	// Loading and Compilation". In Go nothing is lazily compiled, so this
	// is behavioural fidelity rather than a correctness requirement; it is
	// on by default and observable through Stats.
	WarmupIO bool

	// InstrYieldsRecord/Replay simulate the instrumentation's own yield
	// points per switch event. They intentionally differ: record-mode and
	// replay-mode instrumentation do different work, which is exactly why
	// the liveclock guard exists.
	InstrYieldsRecord int
	InstrYieldsReplay int

	// PartialTrace marks the replay input as a salvaged prefix of a torn
	// recording (trace.Recover output). Replay then stops with
	// ErrPartialTrace the moment the salvaged switch stream is exhausted:
	// past the last recorded switch the engine can no longer prove the
	// schedule matches the recording, so continuing cooperatively could
	// diverge silently. Complete traces leave this off — for them an
	// exhausted switch stream just means the recording held no further
	// preemptions.
	PartialTrace bool

	// ProgressDeadline arms the replay watchdog: if replay goes this long
	// without consuming any trace (no switch, clock, native, input, or
	// callback event), the engine aborts with a *StalledError (errors.Is
	// ErrStalled) carrying the last thread and logical-clock position —
	// instead of spinning forever on a livelocked schedule, a hung native
	// stub, or a corrupt switch stream. Zero disables the watchdog; record
	// and off modes ignore it (a recording that makes no progress is the
	// program's own behavior, not a replay fault).
	ProgressDeadline time.Duration

	// Obs, when set, receives the engine's operational metrics (yield
	// points, switches, preemptions, stall checks, …). Metrics live outside
	// the logical clock: they are host-side atomics the program can never
	// observe, are excluded from EngineSnapshot, and therefore cannot
	// perturb replay — the same discipline the liveclock guard applies to
	// instrumentation yields. Nil disables collection at zero cost (the
	// engine's metric handles become nil-safe no-ops).
	Obs *obs.Registry

	// PreflightAnalysis asks embedders to run the static determinism
	// analyses (internal/analysis) over the program before record mode
	// starts, refusing to record when they report findings. The engine
	// itself never sees the program, so the gate is honored by the layer
	// that builds the VM (see cli.BuildEngine); the flag lives here so one
	// Config names the complete record contract.
	PreflightAnalysis bool
}

// DefaultConfig returns a Config with all symmetry mechanisms enabled.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:              mode,
		Time:              RealTime{},
		Preempt:           NeverPreempt{},
		WarmupIO:          true,
		LiveClockGuard:    true,
		SymmetricAlloc:    true,
		EagerStackGrow:    true,
		CaptureBufBytes:   4096,
		InstrYieldsRecord: 2,
		InstrYieldsReplay: 3,
	}
}
