package core

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"dejavu/internal/obs"
	"dejavu/internal/threads"
	"dejavu/internal/trace"
)

// Stats counts the engine's interactions for the evaluation harness.
type Stats struct {
	Switches    uint64
	YieldPoints uint64
	InstrYields uint64 // yield points executed by instrumentation (clock paused)
	ClockReads  uint64
	NativeCalls uint64
	InputReads  uint64
	Callbacks   uint64
	WarmupBytes uint64 // bytes written+read by the §2.4 I/O warm-up
}

// Engine is the DejaVu record/replay engine. One engine instance serves
// one VM execution.
type Engine struct {
	cfg  Config
	mode Mode
	host Host

	w     trace.Sink
	r     trace.Source
	input *bufio.Reader

	// Fig. 2 state.
	liveClock  bool
	nyp        uint64 // record: yields since last switch; replay: countdown
	hasPending bool   // replay: a recorded switch remains
	switchBit  bool   // threadswitchbit

	inInstr bool // guard against recursive instrumentation simulation

	// Logical-clock position for diagnostics: the thread most recently
	// dispatched or seen at a yield point (-1 before the first).
	lastThread int

	// Watchdog state (replay with Config.ProgressDeadline): the wall-clock
	// time of the last trace consumption. Replay that yields without ever
	// consuming trace — a livelocked schedule, a hung native stub, a corrupt
	// switch stream — stops advancing this and trips the deadline.
	//
	// The wall-clock read is amortized per no-progress streak: idleYields
	// counts yield points since the last trace consumption, and nextStall is
	// the streak length at which the next time.Since check runs. The
	// threshold starts low (stallCheckFirst) so a replay that stalls
	// immediately — a tiny workload may execute fewer than 256 yields total —
	// still trips the deadline promptly, then ramps geometrically toward a
	// steady-state check every 256 idle yields.
	lastProgress time.Time
	idleYields   uint64
	nextStall    uint64

	err   error // sticky divergence/IO error
	stats Stats
	m     engineMetrics
}

// engineMetrics holds the engine's obs series. All fields are nil-safe
// no-ops when Config.Obs is nil; none of them is ever read by the engine
// or serialized into EngineSnapshot, which is what keeps observation out
// of the logical clock (the obs package doc states the invariant).
type engineMetrics struct {
	yieldPoints *obs.Counter
	instrYields *obs.Counter
	switches    *obs.Counter
	preemptRec  *obs.Counter // preemptions emitted while recording
	preemptRep  *obs.Counter // recorded preemptions consumed during replay
	stallChecks *obs.Counter // wall-clock watchdog checks actually performed
	clockReads  *obs.Counter
	nativeCalls *obs.Counter
	traceBytes  *obs.Gauge // bytes emitted by the record-mode sink
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		yieldPoints: reg.Counter("dv_engine_yield_points_total"),
		instrYields: reg.Counter("dv_engine_instr_yields_total"),
		switches:    reg.Counter("dv_engine_switches_total"),
		preemptRec:  reg.Counter("dv_engine_preemptions_emitted_total"),
		preemptRep:  reg.Counter("dv_engine_preemptions_consumed_total"),
		stallChecks: reg.Counter("dv_engine_stall_checks_total"),
		clockReads:  reg.Counter("dv_engine_clock_reads_total"),
		nativeCalls: reg.Counter("dv_engine_native_calls_total"),
		traceBytes:  reg.Gauge("dv_engine_trace_bytes"),
	}
}

// ErrNotReplaying is returned by replay-only queries in other modes.
var ErrNotReplaying = errors.New("core: engine is not in replay mode")

// ErrNotSeekable is returned by Snapshot/Restore when the engine replays
// from a streaming source, which cannot rewind.
var ErrNotSeekable = errors.New("core: trace source is not seekable (streaming replay)")

// ErrStalled is the sentinel every watchdog abort unwraps to: replay made
// no logical-clock progress within Config.ProgressDeadline. The concrete
// error is a *StalledError carrying the stall position.
var ErrStalled = errors.New("core: replay stalled (no trace progress within deadline)")

// StalledError is the watchdog's structured abort: where replay was when
// it stopped consuming the trace. It unwraps to ErrStalled.
type StalledError struct {
	Thread   int           // thread at the stall point (-1 unknown)
	Yields   uint64        // yield points executed (logical-clock position)
	Events   int           // data events consumed before the stall
	Deadline time.Duration // the deadline that fired
}

func (s *StalledError) Error() string {
	return fmt.Sprintf("core: replay stalled: no trace progress within %v (thread %d, %d yield points, %d events replayed)",
		s.Deadline, s.Thread, s.Yields, s.Events)
}

// Unwrap makes errors.Is(err, ErrStalled) hold.
func (s *StalledError) Unwrap() error { return ErrStalled }

// ErrPartialTrace is the sticky engine error raised when replay of a
// salvaged trace (Config.PartialTrace) exhausts the salvaged switch stream:
// the recording held more preemptions than survived the crash, so the
// engine stops at the last point it can prove faithful rather than
// continuing cooperatively and diverging silently. It unwraps to
// io.ErrUnexpectedEOF, the same condition a torn data stream raises, so
// one errors.Is check recognizes every partial-replay stop.
var ErrPartialTrace = fmt.Errorf("core: salvaged trace exhausted mid-replay: %w", io.ErrUnexpectedEOF)

// NewEngine builds an engine from cfg.
func NewEngine(cfg Config) (*Engine, error) {
	e := &Engine{cfg: cfg, mode: cfg.Mode, liveClock: true, lastThread: -1,
		m: newEngineMetrics(cfg.Obs)}
	if cfg.Time == nil {
		cfg.Time = RealTime{}
		e.cfg.Time = cfg.Time
	}
	switch cfg.Mode {
	case ModeOff:
	case ModeRecord:
		if cfg.Preempt == nil {
			return nil, errors.New("core: record mode requires a Preemptor")
		}
		if cfg.TraceSink != nil {
			e.w = cfg.TraceSink
		} else {
			e.w = trace.NewWriter(cfg.ProgHash)
		}
	case ModeReplay:
		if cfg.TraceSrc != nil {
			e.r = cfg.TraceSrc
		} else {
			r, err := trace.NewReader(cfg.TraceIn, cfg.ProgHash)
			if err != nil {
				return nil, err
			}
			e.r = r
		}
	default:
		return nil, fmt.Errorf("core: unknown mode %d", cfg.Mode)
	}
	if cfg.Input != nil {
		e.input = bufio.NewReader(cfg.Input)
	}
	return e, nil
}

// Mode returns the engine mode.
func (e *Engine) Mode() Mode { return e.mode }

// Err returns the sticky replay error, if any.
func (e *Engine) Err() error { return e.err }

// Stats returns interaction counts.
func (e *Engine) Stats() Stats { return e.stats }

// TraceStats returns the record-mode trace statistics.
func (e *Engine) TraceStats() (trace.Stats, bool) {
	if e.w == nil {
		return trace.Stats{}, false
	}
	return e.w.Stats(), true
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		// The trace layer only knows event ordinals; stamp divergence
		// reports with the logical-clock position the engine tracks.
		var div *trace.DivergenceError
		if errors.As(err, &div) && div.Thread < 0 {
			div.Thread = e.lastThread
			div.Yields = e.stats.YieldPoints
		}
		e.err = err
	}
}

// NotePosition records the thread the VM is about to run, so divergence
// and stall reports carry a position even when the failure happens between
// yield points (e.g. inside a native bracket).
func (e *Engine) NotePosition(threadID int) { e.lastThread = threadID }

// stallCheckFirst is the no-progress streak length at which the watchdog
// performs its first wall-clock check. It must be small: a tiny workload
// can stall with single-digit yields on the clock, and the old
// global-yield-count gate (check only when stats.YieldPoints was a
// multiple of 256) could postpone the first check arbitrarily — or, for a
// program with fewer than 256 total yields that never hit a multiple,
// forever.
const stallCheckFirst = 16

// markProgress timestamps trace consumption for the watchdog and resets
// the no-progress streak.
func (e *Engine) markProgress() {
	if e.cfg.ProgressDeadline > 0 {
		e.lastProgress = time.Now()
		e.idleYields = 0
		e.nextStall = stallCheckFirst
	}
}

// checkStall trips the watchdog when replay has gone ProgressDeadline
// without consuming any trace. Called from the yield-point hot path, so
// the wall-clock read is amortized: the first check of a streak happens
// after stallCheckFirst idle yields, then the threshold doubles up to a
// steady-state check every 256 idle yields. A stall is therefore detected
// within roughly one deadline plus 256 yield periods in the worst case,
// and within a few yield periods for programs that stall early.
func (e *Engine) checkStall(t *threads.Thread) bool {
	if e.cfg.ProgressDeadline <= 0 {
		return false
	}
	e.idleYields++
	if e.idleYields < e.nextStall {
		return false
	}
	next := e.idleYields * 2
	if next > e.idleYields+256 {
		next = e.idleYields + 256
	}
	e.nextStall = next
	e.m.stallChecks.Inc()
	if time.Since(e.lastProgress) <= e.cfg.ProgressDeadline {
		return false
	}
	e.fail(&StalledError{
		Thread:   t.ID,
		Yields:   e.stats.YieldPoints,
		Events:   e.r.EventIndex(),
		Deadline: e.cfg.ProgressDeadline,
	})
	return true
}

// Begin performs DejaVu initialization with symmetric side effects (§2.4):
// the capture buffer is allocated in the VM heap in both modes (or, under
// the SymmetricAlloc ablation, only when recording — the bug the paper's
// design avoids), and replay prefetches its first switch count.
func (e *Engine) Begin(host Host) error {
	e.host = host
	if e.mode != ModeOff && host != nil {
		if e.cfg.SymmetricAlloc || e.mode == ModeRecord {
			if err := host.AllocCaptureBuffer(e.cfg.CaptureBufBytes); err != nil {
				return err
			}
		}
	}
	if e.mode != ModeOff && e.cfg.WarmupIO {
		if err := e.warmupIO(); err != nil {
			return err
		}
	}
	if e.mode == ModeReplay {
		e.markProgress()
		e.loadNextSwitch()
	}
	return nil
}

// warmupIO writes a temporary file and immediately reads it back — the
// paper's trick for forcing both the output path (used by record) and the
// input path (used by replay) through identical initialization in both
// modes (§2.4).
func (e *Engine) warmupIO() error {
	f, err := os.CreateTemp("", "dejavu-warmup-*")
	if err != nil {
		return fmt.Errorf("core: I/O warm-up: %w", err)
	}
	name := f.Name()
	defer os.Remove(name)
	payload := []byte("dejavu symmetric I/O warm-up")
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return fmt.Errorf("core: I/O warm-up write: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	back, err := os.ReadFile(name)
	if err != nil {
		return fmt.Errorf("core: I/O warm-up read: %w", err)
	}
	if string(back) != string(payload) {
		return fmt.Errorf("core: I/O warm-up round-trip mismatch")
	}
	e.stats.WarmupBytes = uint64(len(payload) + len(back))
	return nil
}

// End finalizes record mode and returns the trace bytes. When recording
// through an external sink (Config.TraceSink) the bytes live wherever the
// sink put them: End still emits the final data-stream event but returns
// nil, and the caller closes the sink.
func (e *Engine) End() []byte {
	if e.mode != ModeRecord {
		return nil
	}
	e.w.End()
	e.m.traceBytes.Set(int64(e.w.Stats().TotalBytes))
	if bw, ok := e.w.(*trace.Writer); ok {
		return bw.Bytes()
	}
	return nil
}

// sourceErrer is implemented by streaming sources whose NextSwitch can
// fail on transport errors rather than clean exhaustion.
type sourceErrer interface{ Err() error }

func (e *Engine) loadNextSwitch() {
	nyp, ok := e.r.NextSwitch()
	e.nyp = nyp
	e.hasPending = ok
	if ok {
		e.markProgress()
	}
	if !ok {
		// A flat reader runs out of switches only at the recorded end; a
		// streaming source may instead have hit a truncated or corrupt
		// container, which must fail replay, not silently disable
		// preemption.
		if se, isSE := e.r.(sourceErrer); isSE && se.Err() != nil {
			e.fail(se.Err())
		} else if e.cfg.PartialTrace {
			// Salvaged trace: the switch stream ends at the salvage
			// point, not at the recorded end. Failing here — at the
			// prefetch — stops replay at the last switch the recording
			// still vouches for.
			e.fail(ErrPartialTrace)
		}
	}
}

// AtYieldPoint is the Fig. 2 instrumentation, executed at every yield
// point (method prologues and loop backedges). It returns true when the
// caller must perform a thread switch at this yield point.
func (e *Engine) AtYieldPoint(t *threads.Thread) bool {
	if e.err != nil {
		return false
	}
	e.lastThread = t.ID
	switch e.mode {
	case ModeOff:
		e.stats.YieldPoints++
		e.m.yieldPoints.Inc()
		t.YieldCount++
		return e.cfg.Preempt != nil && e.cfg.Preempt.Pending()

	case ModeRecord:
		if e.liveClock {
			e.liveClock = false // pause the clock
			e.stats.YieldPoints++
			e.m.yieldPoints.Inc()
			e.nyp++
			t.NYP++
			t.YieldCount++
			if e.cfg.Preempt.Pending() { // preemptiveHardwareBit
				e.m.preemptRec.Inc()
				e.runInstrumentation(t, e.cfg.InstrYieldsRecord)
				e.w.Switch(e.nyp) // recordThreadSwitch(nyp)
				e.stats.Switches++
				e.m.switches.Inc()
				e.nyp = 0
				t.NYP = 0
				e.symmetricSwitchEffects()
				e.switchBit = true
			}
			e.liveClock = true // resume the clock
		} else {
			e.instrumentationYield(t)
		}

	case ModeReplay:
		if e.liveClock {
			e.liveClock = false
			e.stats.YieldPoints++
			e.m.yieldPoints.Inc()
			t.YieldCount++
			if e.checkStall(t) {
				e.liveClock = true
				return false
			}
			if e.hasPending {
				if e.nyp > 0 {
					e.nyp--
				}
				if e.nyp == 0 { // the recorded program switched here
					e.m.preemptRep.Inc()
					e.runInstrumentation(t, e.cfg.InstrYieldsReplay)
					e.loadNextSwitch() // nyp = replayThreadSwitch()
					e.stats.Switches++
					e.m.switches.Inc()
					e.symmetricSwitchEffects()
					e.switchBit = true
				}
			}
			e.liveClock = true
		} else {
			e.instrumentationYield(t)
		}
	}
	if e.switchBit {
		e.switchBit = false
		return true // performThreadSwitch()
	}
	return false
}

// runInstrumentation simulates the instrumentation's own execution passing
// through k yield points while the logical clock is paused. Record and
// replay instrumentation perform different work (k differs by mode), which
// is harmless exactly because of the liveclock guard.
func (e *Engine) runInstrumentation(t *threads.Thread, k int) {
	if e.inInstr {
		return
	}
	e.inInstr = true
	for i := 0; i < k; i++ {
		e.AtYieldPoint(t)
	}
	e.inInstr = false
}

// instrumentationYield handles a yield point reached with the clock
// paused. With the guard enabled it is excluded from the logical clock;
// the ablation counts it, breaking record/replay symmetry.
func (e *Engine) instrumentationYield(t *threads.Thread) {
	e.stats.InstrYields++
	e.m.instrYields.Inc()
	if e.cfg.LiveClockGuard {
		return
	}
	// Ablation: instrumentation yields leak into the logical clock.
	switch e.mode {
	case ModeRecord:
		e.nyp++
		t.NYP++
		t.YieldCount++
	case ModeReplay:
		t.YieldCount++
		if e.hasPending && e.nyp > 0 {
			e.nyp--
		}
	}
}

// symmetricSwitchEffects performs the engine's per-switch side effects on
// the VM. With EagerStackGrow both modes grow the activation stack at one
// heuristic threshold; the ablation uses the modes' true (differing)
// frame needs, desynchronizing stack growth between record and replay.
func (e *Engine) symmetricSwitchEffects() {
	if e.host == nil {
		return
	}
	slots := 16
	if !e.cfg.EagerStackGrow {
		if e.mode == ModeRecord {
			slots = 6
		} else {
			slots = 24
		}
	}
	if err := e.host.EnsureStackHeadroom(slots); err != nil {
		e.fail(err)
	}
}

// ClockRead performs one wall-clock read (§2.1, §2.2): recorded during
// record, regenerated during replay, so every timer expiry and Date()
// branch reproduces.
func (e *Engine) ClockRead() int64 {
	e.stats.ClockReads++
	e.m.clockReads.Inc()
	switch e.mode {
	case ModeRecord:
		v := e.cfg.Time.NowMillis()
		e.w.Clock(v)
		return v
	case ModeReplay:
		v, err := e.r.Clock()
		if err != nil {
			e.fail(err)
			return 0
		}
		e.markProgress()
		return v
	default:
		return e.cfg.Time.NowMillis()
	}
}

// NativeCall brackets a non-deterministic native call (§2.5): run executes
// the real native and is only invoked in off/record modes; replay returns
// the recorded results without running it.
func (e *Engine) NativeCall(id int, run func() []int64) []int64 {
	e.stats.NativeCalls++
	e.m.nativeCalls.Inc()
	switch e.mode {
	case ModeRecord:
		vals := run()
		e.w.Native(id, vals)
		return vals
	case ModeReplay:
		vals, err := e.r.Native(id)
		if err != nil {
			e.fail(err)
			return nil
		}
		e.markProgress()
		return vals
	default:
		return run()
	}
}

// NativeWithCallbacks brackets a native that makes callbacks into the VM.
// run receives an emit function it must call for every callback; apply
// executes one callback in the VM. During replay the native is not run:
// recorded callbacks are re-applied at the same execution point, then the
// recorded results are returned (§2.5).
func (e *Engine) NativeWithCallbacks(
	id int,
	run func(emit func(cb int, params []int64)) []int64,
	apply func(cb int, params []int64),
) []int64 {
	e.stats.NativeCalls++
	e.m.nativeCalls.Inc()
	switch e.mode {
	case ModeRecord:
		vals := run(func(cb int, params []int64) {
			e.stats.Callbacks++
			e.w.Callback(cb, params)
			apply(cb, params)
		})
		e.w.Native(id, vals)
		return vals
	case ModeReplay:
		for {
			k, err := e.r.Peek()
			if err != nil {
				e.fail(err)
				return nil
			}
			if k != trace.EvCallback {
				break
			}
			cb, params, err := e.r.Callback()
			if err != nil {
				e.fail(err)
				return nil
			}
			e.stats.Callbacks++
			e.markProgress()
			apply(cb, params)
		}
		vals, err := e.r.Native(id)
		if err != nil {
			e.fail(err)
			return nil
		}
		e.markProgress()
		return vals
	default:
		return run(func(cb int, params []int64) {
			e.stats.Callbacks++
			apply(cb, params)
		})
	}
}

// ReadLine reads one environment input line (without the newline),
// recording or replaying it.
func (e *Engine) ReadLine() []byte {
	e.stats.InputReads++
	readReal := func() []byte {
		if e.input == nil {
			return nil
		}
		line, err := e.input.ReadBytes('\n')
		if len(line) > 0 && line[len(line)-1] == '\n' {
			line = line[:len(line)-1]
		}
		if err != nil && len(line) == 0 {
			return nil
		}
		return line
	}
	switch e.mode {
	case ModeRecord:
		b := readReal()
		e.w.Input(b)
		return b
	case ModeReplay:
		b, err := e.r.Input()
		if err != nil {
			e.fail(err)
			return nil
		}
		e.markProgress()
		return b
	default:
		return readReal()
	}
}

// ReplayedEvents returns how many data events replay has consumed — the N
// in a partial-trace report ("replayed N of ~M events"). ok is false
// outside replay mode.
func (e *Engine) ReplayedEvents() (n int, ok bool) {
	if e.mode != ModeReplay {
		return 0, false
	}
	return e.r.EventIndex(), true
}

// RecordPos returns the record-mode logical position within the current
// switch interval: how many yield points have executed since the last
// recorded switch. Segment checkpoints store it so a seeded replay can
// align its countdown with the middle of the interval. ok is false outside
// record mode.
func (e *Engine) RecordPos() (nyp uint64, ok bool) {
	if e.mode != ModeRecord {
		return 0, false
	}
	return e.nyp, true
}

// SeedReplay aligns a freshly begun replay engine with a segment-boundary
// checkpoint taken boundaryNYP yield points into its current switch
// interval. Begin prefetched the interval's full recorded length from the
// segment; of those yields, boundaryNYP already happened before the
// checkpoint, so the countdown shrinks by that much. With no pending
// switch (a salvaged tail that lost its remaining switches) there is
// nothing to align.
func (e *Engine) SeedReplay(boundaryNYP uint64) error {
	if e.mode != ModeReplay {
		return ErrNotReplaying
	}
	if boundaryNYP == 0 || !e.hasPending {
		return nil
	}
	if boundaryNYP >= e.nyp {
		return fmt.Errorf("core: checkpoint does not match its segment: checkpoint sits %d yields into a %d-yield switch interval",
			boundaryNYP, e.nyp)
	}
	e.nyp -= boundaryNYP
	return nil
}

// PendingSwitch exposes the replay countdown for the debugger's status
// display.
func (e *Engine) PendingSwitch() (nyp uint64, pending bool, err error) {
	if e.mode != ModeReplay {
		return 0, false, ErrNotReplaying
	}
	return e.nyp, e.hasPending, nil
}

// EngineSnapshot captures the engine's replay-mode state so a checkpointed
// VM can resume consuming the trace from the same point (Igor-style
// checkpointing and debugger time travel).
type EngineSnapshot struct {
	readerPos  trace.ReaderPos
	nyp        uint64
	hasPending bool
	switchBit  bool
	liveClock  bool
	stats      Stats
}

// traceSeeker is the optional rewind surface a Source may provide; only
// the in-memory Reader does.
type traceSeeker interface {
	Pos() trace.ReaderPos
	Seek(trace.ReaderPos)
}

// Snapshot captures replay position and countdown state. Only meaningful
// in replay mode (record-mode traces are append-only and cannot rewind),
// and only over a seekable (in-memory) trace source.
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	if e.mode != ModeReplay {
		return nil, ErrNotReplaying
	}
	sk, ok := e.r.(traceSeeker)
	if !ok {
		return nil, ErrNotSeekable
	}
	return &EngineSnapshot{
		readerPos:  sk.Pos(),
		nyp:        e.nyp,
		hasPending: e.hasPending,
		switchBit:  e.switchBit,
		liveClock:  e.liveClock,
		stats:      e.stats,
	}, nil
}

// Restore rewinds the engine to a snapshot.
func (e *Engine) Restore(s *EngineSnapshot) error {
	if e.mode != ModeReplay {
		return ErrNotReplaying
	}
	sk, ok := e.r.(traceSeeker)
	if !ok {
		return ErrNotSeekable
	}
	sk.Seek(s.readerPos)
	e.nyp = s.nyp
	e.hasPending = s.hasPending
	e.switchBit = s.switchBit
	e.liveClock = s.liveClock
	e.stats = s.stats
	e.err = nil
	// Rewinding is progress from the watchdog's point of view: restart the
	// deadline and the no-progress streak so a freshly restored session has
	// a full deadline to resume consuming trace. The obs metrics in e.m are
	// deliberately NOT rewound — they describe host-side work performed,
	// not replayed state, and restoring them would make observation part of
	// the snapshot (exactly what the obs invariant forbids).
	e.markProgress()
	return nil
}

// EncodeTo serializes the engine snapshot for checkpoint files.
func (s *EngineSnapshot) EncodeTo(buf *[]byte) {
	uv := func(v uint64) {
		for v >= 0x80 {
			*buf = append(*buf, byte(v)|0x80)
			v >>= 7
		}
		*buf = append(*buf, byte(v))
	}
	b := func(v bool) {
		if v {
			*buf = append(*buf, 1)
		} else {
			*buf = append(*buf, 0)
		}
	}
	uv(uint64(s.readerPos.SwPos))
	uv(uint64(s.readerPos.Pos))
	uv(uint64(s.readerPos.Index))
	uv(s.nyp)
	b(s.hasPending)
	b(s.switchBit)
	b(s.liveClock)
	uv(s.stats.Switches)
	uv(s.stats.YieldPoints)
	uv(s.stats.InstrYields)
	uv(s.stats.ClockReads)
	uv(s.stats.NativeCalls)
	uv(s.stats.InputReads)
	uv(s.stats.Callbacks)
	uv(s.stats.WarmupBytes)
}

// DecodeEngineSnapshot parses a snapshot encoded by EncodeTo, returning
// the unread remainder.
func DecodeEngineSnapshot(data []byte) (*EngineSnapshot, []byte, error) {
	var fail error
	uv := func() uint64 {
		if fail != nil {
			return 0
		}
		var v uint64
		var shift uint
		for i := 0; i < len(data); i++ {
			c := data[i]
			if c < 0x80 {
				data = data[i+1:]
				return v | uint64(c)<<shift
			}
			v |= uint64(c&0x7f) << shift
			shift += 7
		}
		fail = errors.New("core: truncated engine snapshot")
		return 0
	}
	b := func() bool {
		if fail != nil || len(data) == 0 {
			fail = errors.New("core: truncated engine snapshot")
			return false
		}
		v := data[0]
		data = data[1:]
		return v == 1
	}
	s := &EngineSnapshot{}
	s.readerPos.SwPos = int(uv())
	s.readerPos.Pos = int(uv())
	s.readerPos.Index = int(uv())
	s.nyp = uv()
	s.hasPending = b()
	s.switchBit = b()
	s.liveClock = b()
	s.stats.Switches = uv()
	s.stats.YieldPoints = uv()
	s.stats.InstrYields = uv()
	s.stats.ClockReads = uv()
	s.stats.NativeCalls = uv()
	s.stats.InputReads = uv()
	s.stats.Callbacks = uv()
	s.stats.WarmupBytes = uv()
	if fail != nil {
		return nil, nil, fail
	}
	return s, data, nil
}
