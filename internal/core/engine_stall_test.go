package core

import (
	"errors"
	"testing"
	"time"

	"dejavu/internal/obs"
)

// TestWatchdogAbortsStalledReplay is the watchdog acceptance bar: a replay
// that stops consuming its trace — here, driven past every recorded switch
// interval — must abort with ErrStalled within the configured deadline,
// and the structured error must carry the stall position.
func TestWatchdogAbortsStalledReplay(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = NewSeededPreemptor(42, 5, 50)
	rec, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	driveYields(rec, newThread(), 1000)
	tr := rec.End()

	const deadline = 50 * time.Millisecond
	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rcfg.ProgressDeadline = deadline
	rep, err := NewEngine(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	th := newThread()
	driveYields(rep, th, 1000) // consume the whole recording
	if rep.Err() != nil {
		t.Fatalf("replay of the full recording failed: %v", rep.Err())
	}

	// The recording is exhausted; every further yield makes no trace
	// progress. The watchdog must fire within the deadline (plus slack for
	// its 256-yield amortization), not hang with us forever.
	start := time.Now()
	for rep.Err() == nil {
		if time.Since(start) > 5*time.Second {
			t.Fatal("watchdog never fired on a stalled replay")
		}
		rep.AtYieldPoint(th)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("watchdog took %v to fire, deadline was %v", wall, deadline)
	}

	if !errors.Is(rep.Err(), ErrStalled) {
		t.Fatalf("stall surfaced as %v, want ErrStalled", rep.Err())
	}
	var st *StalledError
	if !errors.As(rep.Err(), &st) {
		t.Fatalf("stall error is not a *StalledError: %v", rep.Err())
	}
	if st.Thread != th.ID {
		t.Fatalf("stall thread = %d, want %d", st.Thread, th.ID)
	}
	if st.Deadline != deadline {
		t.Fatalf("stall deadline = %v, want %v", st.Deadline, deadline)
	}
	if st.Yields == 0 {
		t.Fatal("stall report carries no yield position")
	}

	// Once tripped, the engine stays failed: further yields never demand a
	// switch and the error is sticky.
	if rep.AtYieldPoint(th) {
		t.Fatal("failed engine still demands switches")
	}
	if !errors.Is(rep.Err(), ErrStalled) {
		t.Fatalf("stall error was not sticky: %v", rep.Err())
	}
}

// TestWatchdogFiresOnShortPrograms is the regression test for the
// amortization bug: the watchdog used to read the wall clock only when the
// GLOBAL yield count hit a multiple of 256, so a tiny workload that
// stalled at (say) 40 yields was not checked again until yield 256 — with
// slow yields that overshoots a short deadline by an order of magnitude,
// and a program whose stalled yields stop before 256 is never checked at
// all. The fix amortizes per no-progress streak: the first check of a
// streak happens after stallCheckFirst (16) idle yields.
func TestWatchdogFiresOnShortPrograms(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = NewSeededPreemptor(7, 5, 12)
	rec, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	const recorded = 40 // well below the old 256-yield check granularity
	driveYields(rec, newThread(), recorded)
	tr := rec.End()

	const deadline = 30 * time.Millisecond
	reg := obs.NewRegistry()
	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rcfg.ProgressDeadline = deadline
	rcfg.Obs = reg
	rep, err := NewEngine(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	th := newThread()
	driveYields(rep, th, recorded)
	if rep.Err() != nil {
		t.Fatalf("replay of the full recording failed: %v", rep.Err())
	}

	// Stall with deliberately slow yields (each ~2ms of VM work). Under the
	// old global-multiple gate the first wall-clock check would wait for
	// yield 256 — over 200 stalled yields and ~400ms+ away; the fixed
	// watchdog must check within the first tens of idle yields.
	start := time.Now()
	for rep.Err() == nil {
		if time.Since(start) > 5*time.Second {
			t.Fatal("watchdog never fired on a short stalled replay")
		}
		rep.AtYieldPoint(th)
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)

	if !errors.Is(rep.Err(), ErrStalled) {
		t.Fatalf("stall surfaced as %v, want ErrStalled", rep.Err())
	}
	var st *StalledError
	if !errors.As(rep.Err(), &st) {
		t.Fatalf("stall error is not a *StalledError: %v", rep.Err())
	}
	// The crisp regression assertion: the stall position must be far below
	// the old 256-yield check boundary.
	if st.Yields >= 150 {
		t.Fatalf("watchdog fired at yield %d — still waiting for the old 256-yield boundary", st.Yields)
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("watchdog took %v; old amortization would explain this, deadline was %v", elapsed, deadline)
	}

	// The metrics side: watchdog checks are an observable series, and
	// observing them did not change the outcome (st fields above).
	if n := reg.Counter("dv_engine_stall_checks_total").Value(); n == 0 {
		t.Fatal("no stall checks counted despite a fired watchdog")
	}
	if n := reg.Counter("dv_engine_yield_points_total").Value(); n == 0 {
		t.Fatal("yield points not counted")
	}
}
