package core

import (
	"errors"
	"testing"
	"time"
)

// TestWatchdogAbortsStalledReplay is the watchdog acceptance bar: a replay
// that stops consuming its trace — here, driven past every recorded switch
// interval — must abort with ErrStalled within the configured deadline,
// and the structured error must carry the stall position.
func TestWatchdogAbortsStalledReplay(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = NewSeededPreemptor(42, 5, 50)
	rec, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	driveYields(rec, newThread(), 1000)
	tr := rec.End()

	const deadline = 50 * time.Millisecond
	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rcfg.ProgressDeadline = deadline
	rep, err := NewEngine(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	th := newThread()
	driveYields(rep, th, 1000) // consume the whole recording
	if rep.Err() != nil {
		t.Fatalf("replay of the full recording failed: %v", rep.Err())
	}

	// The recording is exhausted; every further yield makes no trace
	// progress. The watchdog must fire within the deadline (plus slack for
	// its 256-yield amortization), not hang with us forever.
	start := time.Now()
	for rep.Err() == nil {
		if time.Since(start) > 5*time.Second {
			t.Fatal("watchdog never fired on a stalled replay")
		}
		rep.AtYieldPoint(th)
	}
	if wall := time.Since(start); wall > 2*time.Second {
		t.Fatalf("watchdog took %v to fire, deadline was %v", wall, deadline)
	}

	if !errors.Is(rep.Err(), ErrStalled) {
		t.Fatalf("stall surfaced as %v, want ErrStalled", rep.Err())
	}
	var st *StalledError
	if !errors.As(rep.Err(), &st) {
		t.Fatalf("stall error is not a *StalledError: %v", rep.Err())
	}
	if st.Thread != th.ID {
		t.Fatalf("stall thread = %d, want %d", st.Thread, th.ID)
	}
	if st.Deadline != deadline {
		t.Fatalf("stall deadline = %v, want %v", st.Deadline, deadline)
	}
	if st.Yields == 0 {
		t.Fatal("stall report carries no yield position")
	}

	// Once tripped, the engine stays failed: further yields never demand a
	// switch and the error is sticky.
	if rep.AtYieldPoint(th) {
		t.Fatal("failed engine still demands switches")
	}
	if !errors.Is(rep.Err(), ErrStalled) {
		t.Fatalf("stall error was not sticky: %v", rep.Err())
	}
}
