package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"dejavu/internal/threads"
	"dejavu/internal/trace"
)

type fakeHost struct {
	bufAllocs []int
	growCalls []int
	failAlloc bool
}

func (h *fakeHost) AllocCaptureBuffer(n int) error {
	if h.failAlloc {
		return errors.New("alloc failed")
	}
	h.bufAllocs = append(h.bufAllocs, n)
	return nil
}

func (h *fakeHost) EnsureStackHeadroom(slots int) error {
	h.growCalls = append(h.growCalls, slots)
	return nil
}

// driveYields pushes n yield points through the engine, returning the
// indices at which it demanded a thread switch.
func driveYields(e *Engine, t *threads.Thread, n int) []int {
	var switches []int
	for i := 0; i < n; i++ {
		if e.AtYieldPoint(t) {
			switches = append(switches, i)
		}
	}
	return switches
}

func newThread() *threads.Thread {
	s := threads.NewScheduler()
	return s.NewThread()
}

func TestRecordReplaySwitchPointsIdentical(t *testing.T) {
	const yields = 5000
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = NewSeededPreemptor(42, 5, 50)
	rec, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	host := &fakeHost{}
	if err := rec.Begin(host); err != nil {
		t.Fatal(err)
	}
	t1 := newThread()
	recSwitches := driveYields(rec, t1, yields)
	if len(recSwitches) < 50 {
		t.Fatalf("too few switches recorded: %d", len(recSwitches))
	}
	traceBytes := rec.End()

	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = traceBytes
	rep, err := NewEngine(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Begin(&fakeHost{}); err != nil {
		t.Fatal(err)
	}
	t2 := newThread()
	repSwitches := driveYields(rep, t2, yields)
	if !reflect.DeepEqual(recSwitches, repSwitches) {
		t.Fatalf("switch points differ:\nrecord: %v...\nreplay: %v...",
			recSwitches[:min(10, len(recSwitches))], repSwitches[:min(10, len(repSwitches))])
	}
	if rep.Err() != nil {
		t.Fatalf("replay error: %v", rep.Err())
	}
	if t1.YieldCount != t2.YieldCount {
		t.Fatalf("logical clocks differ: %d vs %d", t1.YieldCount, t2.YieldCount)
	}
}

func TestLiveClockExcludesInstrumentationYields(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = NewSeededPreemptor(7, 3, 9)
	cfg.InstrYieldsRecord = 5
	e, _ := NewEngine(cfg)
	e.Begin(&fakeHost{})
	th := newThread()
	driveYields(e, th, 1000)
	st := e.Stats()
	if st.InstrYields != 5*st.Switches {
		t.Fatalf("instrumentation yields = %d, switches = %d", st.InstrYields, st.Switches)
	}
	// The logical clock counts exactly the real yield points.
	if th.YieldCount != 1000 {
		t.Fatalf("logical clock = %d, want 1000", th.YieldCount)
	}
}

func TestLiveClockAblationBreaksReplay(t *testing.T) {
	// With the guard off, record instrumentation leaks extra counts into
	// nyp while replay leaks a different number, so replayed switch points
	// drift from the recorded ones.
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = NewSeededPreemptor(11, 5, 20)
	cfg.LiveClockGuard = false
	rec, _ := NewEngine(cfg)
	rec.Begin(&fakeHost{})
	recSwitches := driveYields(rec, newThread(), 2000)
	tr := rec.End()

	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rcfg.LiveClockGuard = false
	rep, _ := NewEngine(rcfg)
	rep.Begin(&fakeHost{})
	repSwitches := driveYields(rep, newThread(), 2000)
	if reflect.DeepEqual(recSwitches, repSwitches) {
		t.Fatal("ablation unexpectedly preserved switch points")
	}
}

func TestSymmetricAllocation(t *testing.T) {
	for _, mode := range []Mode{ModeRecord, ModeReplay} {
		cfg := DefaultConfig(mode)
		cfg.Preempt = NeverPreempt{}
		if mode == ModeReplay {
			w := trace.NewWriter(0)
			w.End()
			cfg.TraceIn = w.Bytes()
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		host := &fakeHost{}
		if err := e.Begin(host); err != nil {
			t.Fatal(err)
		}
		if len(host.bufAllocs) != 1 || host.bufAllocs[0] != cfg.CaptureBufBytes {
			t.Fatalf("%v: capture buffer allocs = %v", mode, host.bufAllocs)
		}
	}
}

func TestAsymmetricAllocationAblation(t *testing.T) {
	cfg := DefaultConfig(ModeReplay)
	cfg.SymmetricAlloc = false
	w := trace.NewWriter(0)
	w.End()
	cfg.TraceIn = w.Bytes()
	e, _ := NewEngine(cfg)
	host := &fakeHost{}
	e.Begin(host)
	if len(host.bufAllocs) != 0 {
		t.Fatal("ablation should skip the replay-mode buffer allocation")
	}
}

func TestEagerStackGrowthSymmetry(t *testing.T) {
	run := func(eager bool, mode Mode, tr []byte) []int {
		cfg := DefaultConfig(mode)
		cfg.EagerStackGrow = eager
		cfg.Preempt = NewSeededPreemptor(3, 4, 10)
		cfg.TraceIn = tr
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		host := &fakeHost{}
		e.Begin(host)
		driveYields(e, newThread(), 500)
		if mode == ModeRecord {
			tr = e.End()
			t.Cleanup(func() {})
			lastTrace = tr
		}
		return host.growCalls
	}
	recGrow := run(true, ModeRecord, nil)
	repGrow := run(true, ModeReplay, lastTrace)
	if !reflect.DeepEqual(recGrow, repGrow) {
		t.Fatalf("eager growth differs between modes: %v vs %v", recGrow[:min(3, len(recGrow))], repGrow[:min(3, len(repGrow))])
	}
	recGrow = run(false, ModeRecord, nil)
	repGrow = run(false, ModeReplay, lastTrace)
	if reflect.DeepEqual(recGrow, repGrow) {
		t.Fatal("ablation should desynchronize stack growth")
	}
}

var lastTrace []byte

func TestClockReadRecordReplay(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Time = &FakeTime{Base: 1000, Step: 7}
	rec, _ := NewEngine(cfg)
	rec.Begin(&fakeHost{})
	var recorded []int64
	for i := 0; i < 20; i++ {
		recorded = append(recorded, rec.ClockRead())
	}
	tr := rec.End()

	rcfg := DefaultConfig(ModeReplay)
	rcfg.Time = &FakeTime{Base: 999999, Step: 1} // must be ignored
	rcfg.TraceIn = tr
	rep, _ := NewEngine(rcfg)
	rep.Begin(&fakeHost{})
	for i := 0; i < 20; i++ {
		if got := rep.ClockRead(); got != recorded[i] {
			t.Fatalf("clock read %d: got %d want %d", i, got, recorded[i])
		}
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
}

func TestNativeCallRecordReplay(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	rec, _ := NewEngine(cfg)
	rec.Begin(&fakeHost{})
	ran := 0
	got := rec.NativeCall(9, func() []int64 { ran++; return []int64{5, -6} })
	if ran != 1 || !reflect.DeepEqual(got, []int64{5, -6}) {
		t.Fatalf("record native: ran=%d got=%v", ran, got)
	}
	tr := rec.End()

	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rep, _ := NewEngine(rcfg)
	rep.Begin(&fakeHost{})
	got = rep.NativeCall(9, func() []int64 { t.Fatal("native must not run during replay"); return nil })
	if !reflect.DeepEqual(got, []int64{5, -6}) {
		t.Fatalf("replay native: %v", got)
	}
}

func TestNativeWithCallbacks(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	rec, _ := NewEngine(cfg)
	rec.Begin(&fakeHost{})
	var applied [][]int64
	got := rec.NativeWithCallbacks(4,
		func(emit func(int, []int64)) []int64 {
			emit(1, []int64{10})
			emit(2, []int64{20, 21})
			return []int64{99}
		},
		func(cb int, params []int64) { applied = append(applied, append([]int64{int64(cb)}, params...)) })
	if !reflect.DeepEqual(got, []int64{99}) || len(applied) != 2 {
		t.Fatalf("record: got=%v applied=%v", got, applied)
	}
	tr := rec.End()

	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rep, _ := NewEngine(rcfg)
	rep.Begin(&fakeHost{})
	var replayApplied [][]int64
	got = rep.NativeWithCallbacks(4,
		func(emit func(int, []int64)) []int64 { t.Fatal("native must not run"); return nil },
		func(cb int, params []int64) {
			replayApplied = append(replayApplied, append([]int64{int64(cb)}, params...))
		})
	if !reflect.DeepEqual(got, []int64{99}) {
		t.Fatalf("replay results: %v", got)
	}
	if !reflect.DeepEqual(applied, replayApplied) {
		t.Fatalf("callbacks differ: %v vs %v", applied, replayApplied)
	}
}

func TestReadLineRecordReplay(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Input = bytes.NewBufferString("first\nsecond\n")
	rec, _ := NewEngine(cfg)
	rec.Begin(&fakeHost{})
	if got := rec.ReadLine(); string(got) != "first" {
		t.Fatalf("line 1 = %q", got)
	}
	if got := rec.ReadLine(); string(got) != "second" {
		t.Fatalf("line 2 = %q", got)
	}
	if got := rec.ReadLine(); got != nil {
		t.Fatalf("eof line = %q", got)
	}
	tr := rec.End()

	rcfg := DefaultConfig(ModeReplay)
	rcfg.TraceIn = tr
	rep, _ := NewEngine(rcfg)
	rep.Begin(&fakeHost{})
	if got := rep.ReadLine(); string(got) != "first" {
		t.Fatalf("replay line 1 = %q", got)
	}
	if got := rep.ReadLine(); string(got) != "second" {
		t.Fatalf("replay line 2 = %q", got)
	}
}

func TestDivergenceIsSticky(t *testing.T) {
	w := trace.NewWriter(0)
	w.Clock(1)
	w.End()
	cfg := DefaultConfig(ModeReplay)
	cfg.TraceIn = w.Bytes()
	e, _ := NewEngine(cfg)
	e.Begin(&fakeHost{})
	e.ReadLine() // trace holds a clock event: divergence
	if e.Err() == nil {
		t.Fatal("expected divergence error")
	}
	var div *trace.DivergenceError
	if !errors.As(e.Err(), &div) {
		t.Fatalf("error type: %v", e.Err())
	}
	first := e.Err()
	e.ClockRead()
	if e.Err() != first {
		t.Fatal("error not sticky")
	}
}

func TestReplayWrongProgramRejected(t *testing.T) {
	w := trace.NewWriter(111)
	w.End()
	cfg := DefaultConfig(ModeReplay)
	cfg.TraceIn = w.Bytes()
	cfg.ProgHash = 222
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected program hash mismatch")
	}
}

func TestRecordRequiresPreemptor(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	cfg.Preempt = nil
	if _, err := NewEngine(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestHostTimerFires(t *testing.T) {
	h := StartHostTimer(time.Millisecond)
	defer h.Stop()
	deadline := time.After(2 * time.Second)
	for {
		if h.Pending() {
			return
		}
		select {
		case <-deadline:
			t.Fatal("host timer never fired")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSeededPreemptorDeterministic(t *testing.T) {
	fires := func(seed int64) []int {
		p := NewSeededPreemptor(seed, 2, 9)
		var out []int
		for i := 0; i < 500; i++ {
			if p.Pending() {
				out = append(out, i)
			}
		}
		return out
	}
	if !reflect.DeepEqual(fires(5), fires(5)) {
		t.Fatal("same seed must fire identically")
	}
	if reflect.DeepEqual(fires(5), fires(6)) {
		t.Fatal("different seeds should differ")
	}
}

func TestPendingSwitchQuery(t *testing.T) {
	cfg := DefaultConfig(ModeRecord)
	e, _ := NewEngine(cfg)
	if _, _, err := e.PendingSwitch(); !errors.Is(err, ErrNotReplaying) {
		t.Fatalf("err = %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeOff.String() != "off" || ModeRecord.String() != "record" || ModeReplay.String() != "replay" {
		t.Fatal("mode names")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestOffModePaths(t *testing.T) {
	cfg := DefaultConfig(ModeOff)
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Begin(&fakeHost{})
	// Natives run live in off mode.
	got := e.NativeCall(1, func() []int64 { return []int64{7} })
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("off native: %v", got)
	}
	applied := 0
	got = e.NativeWithCallbacks(2,
		func(emit func(int, []int64)) []int64 { emit(1, []int64{3}); return []int64{1} },
		func(cb int, params []int64) { applied++ })
	if applied != 1 || got[0] != 1 {
		t.Fatalf("off callbacks: applied=%d got=%v", applied, got)
	}
	// No input configured: ReadLine returns nil.
	if b := e.ReadLine(); b != nil {
		t.Fatalf("off readline: %q", b)
	}
	// Clock reads pass through the time source.
	if v := e.ClockRead(); v == 0 {
		t.Fatal("off clock read returned zero from RealTime")
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	// Record a short run, then replay half, snapshot, finish, restore, and
	// finish again: the second consumption must see the same values.
	rcfg := DefaultConfig(ModeRecord)
	rcfg.Time = &FakeTime{Base: 10, Step: 5}
	rcfg.Preempt = NewSeededPreemptor(2, 3, 9)
	rec, _ := NewEngine(rcfg)
	rec.Begin(&fakeHost{})
	th := newThread()
	for i := 0; i < 100; i++ {
		rec.AtYieldPoint(th)
		if i%10 == 0 {
			rec.ClockRead()
		}
	}
	tr := rec.End()

	pcfg := DefaultConfig(ModeReplay)
	pcfg.TraceIn = tr
	rep, _ := NewEngine(pcfg)
	rep.Begin(&fakeHost{})
	th2 := newThread()
	firstHalf := []int64{}
	for i := 0; i < 50; i++ {
		rep.AtYieldPoint(th2)
		if i%10 == 0 {
			firstHalf = append(firstHalf, rep.ClockRead())
		}
	}
	snap, err := rep.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tail := func() []int64 {
		var out []int64
		for i := 50; i < 100; i++ {
			rep.AtYieldPoint(th2)
			if i%10 == 0 {
				out = append(out, rep.ClockRead())
			}
		}
		return out
	}
	t1 := tail()
	if err := rep.Restore(snap); err != nil {
		t.Fatal(err)
	}
	t2 := tail()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("replay tails differ after engine restore: %v vs %v", t1, t2)
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	_ = firstHalf

	// Codec round trip.
	var buf []byte
	snap.EncodeTo(&buf)
	dec, rest, err := DecodeEngineSnapshot(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("%v, %d trailing", err, len(rest))
	}
	if err := rep.Restore(dec); err != nil {
		t.Fatal(err)
	}
	t3 := tail()
	if !reflect.DeepEqual(t1, t3) {
		t.Fatal("decoded snapshot restored differently")
	}
	for _, cut := range []int{0, 1, 5, len(buf) - 1} {
		if _, _, err := DecodeEngineSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Snapshot is replay-only.
	if _, err := rec.Snapshot(); err != ErrNotReplaying {
		t.Fatalf("record snapshot: %v", err)
	}
	if err := rec.Restore(snap); err != ErrNotReplaying {
		t.Fatalf("record restore: %v", err)
	}
}

func TestWarmupIOSymmetric(t *testing.T) {
	for _, mode := range []Mode{ModeRecord, ModeReplay} {
		cfg := DefaultConfig(mode)
		cfg.Preempt = NeverPreempt{}
		if mode == ModeReplay {
			w := trace.NewWriter(0)
			w.End()
			cfg.TraceIn = w.Bytes()
		}
		e, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Begin(&fakeHost{}); err != nil {
			t.Fatal(err)
		}
		if e.Stats().WarmupBytes == 0 {
			t.Fatalf("%v: I/O warm-up did not run", mode)
		}
	}
	// Off mode skips it.
	e, _ := NewEngine(DefaultConfig(ModeOff))
	e.Begin(&fakeHost{})
	if e.Stats().WarmupBytes != 0 {
		t.Fatal("off mode should not warm up I/O")
	}
}

// TestEngineSnapshotCodecAllStats fills every Stats field with a distinct
// value via reflection and round-trips the snapshot codec. Adding a field
// to Stats without extending EncodeTo/DecodeEngineSnapshot fails here
// (the regression that silently dropped WarmupBytes from checkpoints).
func TestEngineSnapshotCodecAllStats(t *testing.T) {
	s := &EngineSnapshot{
		readerPos:  trace.ReaderPos{SwPos: 3, Pos: 999, Index: 42},
		nyp:        77,
		hasPending: true,
		switchBit:  true,
		liveClock:  true,
	}
	sv := reflect.ValueOf(&s.stats).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("Stats field %s is %v; extend this test for non-uint64 fields",
				sv.Type().Field(i).Name, f.Kind())
		}
		f.SetUint(uint64(1000 + i*131)) // distinct per field, multi-byte varints
	}
	var buf []byte
	s.EncodeTo(&buf)
	got, rest, err := DecodeEngineSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("snapshot did not round-trip:\nenc %+v\ndec %+v", s, got)
	}
	// Every truncation of the encoding must error, not mis-decode.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeEngineSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
