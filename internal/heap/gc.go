package heap

import "fmt"

// RootVisitor is called by the VM's root enumeration for every root slot
// holding a (possibly null) reference. The collector updates the slot in
// place with the object's new address.
type RootVisitor func(slot *Addr)

// RootSet enumerates all roots: class statics, VM-internal tables. The
// function must call visit once per root slot.
type RootSet func(visit RootVisitor)

// StackRoot describes one thread's activation stack: a heap-resident
// int64-array segment whose live slots [0, Limit) are classified by the
// side table Tags — true slots hold references. This is the analog of
// Jalapeño's per-safe-point stack reference maps: the collector forwards
// the segment itself, then the tagged slots inside its to-space copy.
type StackRoot struct {
	Seg   *Addr
	Tags  []bool
	Limit int
}

// Collect runs a Cheney semispace copying collection. Live objects move to
// the other semispace in breadth-first order — a deterministic function of
// the root enumeration order, so record and replay executions produce
// identical post-collection addresses.
func (h *Heap) Collect(roots RootSet, stacks []StackRoot) {
	h.collectInto(roots, stacks, h.semi, otherBase(h.base, h.semi))
}

// Grow collects into a doubled semispace, both compacting and enlarging.
func (h *Heap) Grow(roots RootSet, stacks []StackRoot) {
	newSemi := h.semi * 2
	newMem := make([]byte, 2*newSemi)
	// Copy into the first semispace of the new memory.
	h.collectIntoMem(roots, stacks, newMem, newSemi, 0)
	h.Grows++
}

func otherBase(base, semi int) int {
	if base == 0 {
		return semi // flip to the high half
	}
	return 0
}

func (h *Heap) collectInto(roots RootSet, stacks []StackRoot, newSemi, toBase int) {
	h.collectIntoMem(roots, stacks, h.mem, newSemi, toBase)
}

// collectIntoMem copies live data from the current space in h.mem into
// toMem at toBase. toMem may alias h.mem (normal flip) or be fresh (grow).
func (h *Heap) collectIntoMem(roots RootSet, stacks []StackRoot, toMem []byte, newSemi, toBase int) {
	from := h.mem
	to := toMem
	allocPtr := toBase + WordSize // keep null reserved

	load := func(mem []byte, off int) uint64 {
		return uint64(mem[off]) | uint64(mem[off+1])<<8 | uint64(mem[off+2])<<16 |
			uint64(mem[off+3])<<24 | uint64(mem[off+4])<<32 | uint64(mem[off+5])<<40 |
			uint64(mem[off+6])<<48 | uint64(mem[off+7])<<56
	}
	store := func(mem []byte, off int, v uint64) {
		mem[off] = byte(v)
		mem[off+1] = byte(v >> 8)
		mem[off+2] = byte(v >> 16)
		mem[off+3] = byte(v >> 24)
		mem[off+4] = byte(v >> 32)
		mem[off+5] = byte(v >> 40)
		mem[off+6] = byte(v >> 48)
		mem[off+7] = byte(v >> 56)
	}

	// forward copies the entity at a (if not already copied) and returns
	// its new address. Forwarding an address that does not lie in the
	// occupied from-space is a collector-invariant violation — typically a
	// root slot visited twice, or a primitive slot mistagged as a
	// reference — and is reported immediately rather than silently
	// corrupting the to-space.
	fromLo, fromHi := h.base+WordSize, h.alloc
	forward := func(a Addr) Addr {
		if a == 0 {
			return 0
		}
		if int(a) < fromLo || int(a) >= fromHi {
			panic(fmt.Sprintf("heap: forwarding %d, outside from-space [%d,%d): double-visited root or mistagged slot", a, fromLo, fromHi))
		}
		hdr := load(from, int(a))
		if hdr&forwardBit != 0 {
			return Addr(hdr & 0xffffffff)
		}
		kind := Kind(hdr >> kindShift & 7)
		length := int(hdr >> typeBits & lenMask)
		size := WordSize + payloadBytes(kind, length)
		if allocPtr+size > toBase+newSemi {
			panic(fmt.Sprintf("heap: to-space overflow during collection (need %d)", size))
		}
		na := Addr(allocPtr)
		copy(to[allocPtr:allocPtr+size], from[int(a):int(a)+size])
		allocPtr += size
		store(from, int(a), forwardBit|uint64(na))
		return na
	}

	roots(func(slot *Addr) {
		*slot = forward(*slot)
	})

	// Thread stacks: forward each segment, then rewrite the tagged slots
	// inside its to-space copy with forwarded references.
	for _, sr := range stacks {
		if sr.Seg == nil || *sr.Seg == 0 {
			continue
		}
		*sr.Seg = forward(*sr.Seg)
		payload := int(*sr.Seg) + WordSize
		for i := 0; i < sr.Limit && i < len(sr.Tags); i++ {
			if sr.Tags[i] {
				old := Addr(load(to, payload+i*WordSize))
				store(to, payload+i*WordSize, uint64(forward(old)))
			}
		}
	}

	// Cheney scan: walk the to-space copying referents.
	scan := toBase + WordSize
	for scan < allocPtr {
		hdr := load(to, scan)
		typeID := int(hdr & typeMask)
		length := int(hdr >> typeBits & lenMask)
		kind := Kind(hdr >> kindShift & 7)
		payload := scan + WordSize
		switch kind {
		case KindObject:
			refMap := h.types.RefMaps[typeID]
			for i := 0; i < length && i < len(refMap); i++ {
				if refMap[i] {
					old := Addr(load(to, payload+i*WordSize))
					store(to, payload+i*WordSize, uint64(forward(old)))
				}
			}
		case KindRefArr:
			for i := 0; i < length; i++ {
				old := Addr(load(to, payload+i*WordSize))
				store(to, payload+i*WordSize, uint64(forward(old)))
			}
		}
		scan += WordSize + payloadBytes(kind, length)
	}

	h.mem = toMem
	h.semi = newSemi
	h.base = toBase
	h.alloc = allocPtr
	h.Collections++
}

// Snapshot captures the complete heap state for checkpointing.
type Snapshot struct {
	Mem   []byte
	Semi  int
	Base  int
	Alloc int
}

// Snapshot copies the full heap state.
func (h *Heap) Snapshot() *Snapshot {
	return &Snapshot{
		Mem:   append([]byte(nil), h.mem...),
		Semi:  h.semi,
		Base:  h.base,
		Alloc: h.alloc,
	}
}

// Restore reinstates a snapshot taken from this or an identically
// configured heap.
func (h *Heap) Restore(s *Snapshot) {
	h.mem = append(h.mem[:0:0], s.Mem...)
	h.semi = s.Semi
	h.base = s.Base
	h.alloc = s.Alloc
}

// LiveBytes walks the active semispace and reports allocated bytes,
// entity count — used by tests and the heap inspector.
func (h *Heap) LiveBytes() (bytes, entities int) {
	off := h.base + WordSize
	for off < h.alloc {
		w := h.word(off)
		kind := Kind(w >> kindShift & 7)
		length := int(w >> typeBits & lenMask)
		size := WordSize + payloadBytes(kind, length)
		bytes += size
		entities++
		off += size
	}
	return bytes, entities
}

// EncodeTo serializes the snapshot (checkpoint files).
func (s *Snapshot) EncodeTo(buf *[]byte) {
	*buf = appendUvarint(*buf, uint64(s.Semi))
	*buf = appendUvarint(*buf, uint64(s.Base))
	*buf = appendUvarint(*buf, uint64(s.Alloc))
	*buf = appendUvarint(*buf, uint64(len(s.Mem)))
	*buf = append(*buf, s.Mem...)
}

// DecodeSnapshot parses a snapshot encoded by EncodeTo, returning the rest
// of the input.
func DecodeSnapshot(data []byte) (*Snapshot, []byte, error) {
	s := &Snapshot{}
	var v uint64
	var err error
	if v, data, err = readUvarint(data); err != nil {
		return nil, nil, err
	}
	s.Semi = int(v)
	if v, data, err = readUvarint(data); err != nil {
		return nil, nil, err
	}
	s.Base = int(v)
	if v, data, err = readUvarint(data); err != nil {
		return nil, nil, err
	}
	s.Alloc = int(v)
	if v, data, err = readUvarint(data); err != nil {
		return nil, nil, err
	}
	if v > uint64(len(data)) {
		return nil, nil, fmt.Errorf("heap: snapshot truncated")
	}
	s.Mem = append([]byte(nil), data[:v]...)
	return s, data[v:], nil
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func readUvarint(b []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < 0x80 {
			if i > 9 || (i == 9 && c > 1) {
				return 0, nil, fmt.Errorf("heap: varint overflow")
			}
			return v | uint64(c)<<shift, b[i+1:], nil
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, nil, fmt.Errorf("heap: truncated varint")
}
