// Package heap implements the virtual machine's object memory: a flat byte
// array holding objects and arrays at real (virtual) addresses, allocated
// by bump pointer and reclaimed by a type-accurate semispace copying
// collector, as in Jalapeño.
//
// Everything about the heap is a deterministic function of the allocation
// request sequence: identical executions produce identical addresses, which
// is what lets DejaVu replay reproduce the exact memory image — and what
// lets remote reflection interpret raw memory peeks from another process.
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Addr is a byte offset into the heap. 0 is the null reference (the first
// word of the heap is kept unused to reserve it).
type Addr uint32

// WordSize is the size of one heap slot in bytes.
const WordSize = 8

// Kind distinguishes the layout of heap entities.
type Kind uint8

const (
	KindObject   Kind = 0 // payload: one word per field
	KindInt64Arr Kind = 1 // payload: Len words
	KindRefArr   Kind = 2 // payload: Len reference words
	KindByteArr  Kind = 3 // payload: Len bytes, word-padded
)

// Header word layout (little endian in memory):
//
//	bits  0..27: type ID     (class ID for objects; unused for arrays)
//	bits 28..59: payload length (fields, elements, or bytes)
//	bits 60..62: kind
//	bit      63: forwarding marker (GC only; low 32 bits then hold the
//	             forwarded address)
const (
	typeBits   = 28
	lenBits    = 32
	typeMask   = 1<<typeBits - 1
	lenMask    = 1<<lenBits - 1
	kindShift  = typeBits + lenBits
	forwardBit = uint64(1) << 63
)

func packHeader(typeID int, length int, kind Kind) uint64 {
	return uint64(typeID) | uint64(length)<<typeBits | uint64(kind)<<kindShift
}

// TypeTable supplies the garbage collector's reference maps: for each
// object type, which field slots hold references. It mirrors the per-class
// reference maps Jalapeño's type-accurate collectors rely on.
type TypeTable struct {
	Names   []string
	RefMaps [][]bool
}

// AddType appends a type and returns its ID.
func (t *TypeTable) AddType(name string, refMap []bool) int {
	t.Names = append(t.Names, name)
	t.RefMaps = append(t.RefMaps, refMap)
	return len(t.Names) - 1
}

// ErrOutOfMemory is returned by allocation when the current semispace is
// exhausted; the VM responds by collecting and retrying, then growing.
var ErrOutOfMemory = errors.New("heap: semispace exhausted")

// Heap is the VM object memory.
type Heap struct {
	mem   []byte
	semi  int // semispace size in bytes
	base  int // start of the active semispace
	alloc int // next free byte offset (absolute)

	types *TypeTable

	// Statistics.
	Collections int
	Grows       int
	AllocCount  uint64
	AllocBytes  uint64
}

// New creates a heap with the given semispace size in bytes (rounded up to
// a word multiple, minimum one page of 4096).
func New(types *TypeTable, semiBytes int) *Heap {
	if semiBytes < 4096 {
		semiBytes = 4096
	}
	semiBytes = (semiBytes + WordSize - 1) &^ (WordSize - 1)
	h := &Heap{
		mem:   make([]byte, 2*semiBytes),
		semi:  semiBytes,
		types: types,
	}
	h.base = 0
	h.alloc = WordSize // keep address 0 unused so it can mean null
	return h
}

// Types returns the heap's type table.
func (h *Heap) Types() *TypeTable { return h.types }

// SemiSize returns the current semispace size in bytes.
func (h *Heap) SemiSize() int { return h.semi }

// Used returns the number of allocated bytes in the active semispace.
func (h *Heap) Used() int { return h.alloc - h.base }

func (h *Heap) word(off int) uint64 {
	return binary.LittleEndian.Uint64(h.mem[off : off+WordSize])
}

func (h *Heap) setWord(off int, v uint64) {
	binary.LittleEndian.PutUint64(h.mem[off:off+WordSize], v)
}

// payloadBytes returns the word-padded payload size for a header.
func payloadBytes(kind Kind, length int) int {
	switch kind {
	case KindByteArr:
		return (length + WordSize - 1) &^ (WordSize - 1)
	default:
		return length * WordSize
	}
}

func (h *Heap) allocRaw(typeID, length int, kind Kind) (Addr, error) {
	if length < 0 || length > lenMask {
		return 0, fmt.Errorf("heap: bad allocation length %d", length)
	}
	size := WordSize + payloadBytes(kind, length)
	if h.alloc+size > h.base+h.semi {
		return 0, ErrOutOfMemory
	}
	a := Addr(h.alloc)
	h.setWord(h.alloc, packHeader(typeID, length, kind))
	// Zero the payload (memory may be recycled from a previous flip).
	for i := h.alloc + WordSize; i < h.alloc+size; i += WordSize {
		h.setWord(i, 0)
	}
	h.alloc += size
	h.AllocCount++
	h.AllocBytes += uint64(size)
	return a, nil
}

// AllocObject allocates an instance of typeID with the given field count.
func (h *Heap) AllocObject(typeID, numFields int) (Addr, error) {
	if typeID < 0 || typeID >= len(h.types.Names) {
		return 0, fmt.Errorf("heap: unknown type %d", typeID)
	}
	return h.allocRaw(typeID, numFields, KindObject)
}

// AllocArray allocates an array of the given kind and length.
func (h *Heap) AllocArray(kind Kind, length int) (Addr, error) {
	if kind != KindInt64Arr && kind != KindRefArr && kind != KindByteArr {
		return 0, fmt.Errorf("heap: bad array kind %d", kind)
	}
	return h.allocRaw(0, length, kind)
}

// header validates a and returns its decoded header.
func (h *Heap) header(a Addr) (typeID, length int, kind Kind) {
	w := h.word(int(a))
	return int(w & typeMask), int(w >> typeBits & lenMask), Kind(w >> kindShift & 7)
}

// Valid reports whether a points at an allocated entity in the active
// semispace.
func (h *Heap) Valid(a Addr) bool {
	off := int(a)
	return off >= h.base+WordSize && off < h.alloc && off%WordSize == 0
}

// TypeID returns the type of the object at a.
func (h *Heap) TypeID(a Addr) int { t, _, _ := h.header(a); return t }

// KindOf returns the kind of the entity at a.
func (h *Heap) KindOf(a Addr) Kind { _, _, k := h.header(a); return k }

// Len returns the payload length (fields, elements, or bytes) at a.
func (h *Heap) Len(a Addr) int { _, n, _ := h.header(a); return n }

// LoadWord reads payload slot i of the entity at a.
func (h *Heap) LoadWord(a Addr, i int) uint64 {
	return h.word(int(a) + WordSize + i*WordSize)
}

// StoreWord writes payload slot i of the entity at a.
func (h *Heap) StoreWord(a Addr, i int, v uint64) {
	h.setWord(int(a)+WordSize+i*WordSize, v)
}

// LoadByte reads byte i of a byte array at a.
func (h *Heap) LoadByte(a Addr, i int) byte {
	return h.mem[int(a)+WordSize+i]
}

// StoreByte writes byte i of a byte array at a.
func (h *Heap) StoreByte(a Addr, i int, v byte) {
	h.mem[int(a)+WordSize+i] = v
}

// Bytes returns the byte-array payload at a as a slice aliasing heap
// memory. The slice is invalidated by any collection.
func (h *Heap) Bytes(a Addr) []byte {
	_, n, k := h.header(a)
	if k != KindByteArr {
		panic(fmt.Sprintf("heap: Bytes on kind %d", k))
	}
	off := int(a) + WordSize
	return h.mem[off : off+n]
}

// CheckBounds validates an array index, returning a descriptive error for
// the interpreter's trap machinery.
func (h *Heap) CheckBounds(a Addr, i int) error {
	_, n, _ := h.header(a)
	if i < 0 || i >= n {
		return fmt.Errorf("heap: index %d out of bounds (length %d)", i, n)
	}
	return nil
}

// ReadBytes copies n bytes at absolute address a into p, for the ptrace
// peek server. It performs pure reads with bounds checking and never
// faults.
func (h *Heap) ReadBytes(a Addr, p []byte) error {
	off := int(a)
	if off < 0 || off+len(p) > len(h.mem) {
		return fmt.Errorf("heap: peek [%d,%d) outside memory of %d bytes", off, off+len(p), len(h.mem))
	}
	copy(p, h.mem[off:off+len(p)])
	return nil
}

// MemSize returns the total heap memory size in bytes (both semispaces).
func (h *Heap) MemSize() int { return len(h.mem) }

// ActiveBase returns the byte offset of the active semispace, so tools can
// read the occupied region [ActiveBase, ActiveBase+Used()).
func (h *Heap) ActiveBase() Addr { return Addr(h.base) }

// DecodeHeader unpacks a raw header word, as read from this or a remote
// heap's memory. Remote reflection uses it to interpret peeked bytes with
// the same layout rules the VM itself uses.
func DecodeHeader(w uint64) (typeID, length int, kind Kind) {
	return int(w & typeMask), int(w >> typeBits & lenMask), Kind(w >> kindShift & 7)
}

// HeaderBytes is the size of an entity header.
const HeaderBytes = WordSize

// PayloadAddr returns the address of payload slot i of the entity at a.
func PayloadAddr(a Addr, i int) Addr { return a + HeaderBytes + Addr(i*WordSize) }
