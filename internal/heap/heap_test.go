package heap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testTypes() *TypeTable {
	t := &TypeTable{}
	t.AddType("Plain", []bool{false, false}) // type 0: two prim fields
	t.AddType("Node", []bool{false, true})   // type 1: value, next(ref)
	t.AddType("Pair", []bool{true, true})    // type 2: two refs
	return t
}

func TestAllocAndAccess(t *testing.T) {
	h := New(testTypes(), 1<<16)
	a, err := h.AllocObject(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("allocated at null")
	}
	h.StoreWord(a, 0, 42)
	h.StoreWord(a, 1, ^uint64(0))
	if h.LoadWord(a, 0) != 42 || h.LoadWord(a, 1) != ^uint64(0) {
		t.Fatal("word round-trip failed")
	}
	if h.TypeID(a) != 0 || h.KindOf(a) != KindObject || h.Len(a) != 2 {
		t.Fatalf("header: type=%d kind=%d len=%d", h.TypeID(a), h.KindOf(a), h.Len(a))
	}
}

func TestArrays(t *testing.T) {
	h := New(testTypes(), 1<<16)
	ia, _ := h.AllocArray(KindInt64Arr, 10)
	for i := 0; i < 10; i++ {
		h.StoreWord(ia, i, uint64(i*i))
	}
	for i := 0; i < 10; i++ {
		if h.LoadWord(ia, i) != uint64(i*i) {
			t.Fatalf("elem %d", i)
		}
	}
	ba, _ := h.AllocArray(KindByteArr, 13)
	for i := 0; i < 13; i++ {
		h.StoreByte(ba, i, byte('a'+i))
	}
	if string(h.Bytes(ba)) != "abcdefghijklm" {
		t.Fatalf("bytes = %q", h.Bytes(ba))
	}
	if h.Len(ba) != 13 {
		t.Fatalf("byte array len = %d", h.Len(ba))
	}
	if err := h.CheckBounds(ia, 10); err == nil {
		t.Fatal("expected bounds error")
	}
	if err := h.CheckBounds(ia, -1); err == nil {
		t.Fatal("expected bounds error")
	}
	if err := h.CheckBounds(ia, 9); err != nil {
		t.Fatal(err)
	}
}

func TestZeroedAllocation(t *testing.T) {
	h := New(testTypes(), 4096)
	// Fill, collect with no roots (drop everything), refill: new memory
	// must be zeroed even though the semispace was previously used.
	a, _ := h.AllocObject(0, 2)
	h.StoreWord(a, 0, 0xdeadbeef)
	h.Collect(func(visit RootVisitor) {}, nil)
	h.Collect(func(visit RootVisitor) {}, nil) // back to the original space
	b, _ := h.AllocObject(0, 2)
	if h.LoadWord(b, 0) != 0 || h.LoadWord(b, 1) != 0 {
		t.Fatal("allocation not zeroed after semispace reuse")
	}
}

func TestOutOfMemory(t *testing.T) {
	h := New(testTypes(), 4096)
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = h.AllocObject(0, 2); err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestCollectPreservesLiveGraph(t *testing.T) {
	h := New(testTypes(), 1<<16)
	// Build a linked list of 100 nodes, root only the head.
	var head Addr
	var prev Addr
	for i := 0; i < 100; i++ {
		n, err := h.AllocObject(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.StoreWord(n, 0, uint64(i))
		if prev != 0 {
			h.StoreWord(prev, 1, uint64(n))
		} else {
			head = n
		}
		prev = n
	}
	// Garbage: unreferenced objects interleaved.
	for i := 0; i < 50; i++ {
		_, _ = h.AllocObject(0, 2)
	}
	before, _ := h.LiveBytes()
	h.Collect(func(visit RootVisitor) { visit(&head) }, nil)
	after, entities := h.LiveBytes()
	if entities != 100 {
		t.Fatalf("live entities after GC = %d, want 100", entities)
	}
	if after >= before {
		t.Fatalf("GC did not reclaim: before=%d after=%d", before, after)
	}
	// Walk the list: values 0..99 in order.
	n := head
	for i := 0; i < 100; i++ {
		if h.LoadWord(n, 0) != uint64(i) {
			t.Fatalf("node %d corrupted: %d", i, h.LoadWord(n, 0))
		}
		n = Addr(h.LoadWord(n, 1))
	}
	if n != 0 {
		t.Fatal("list not terminated")
	}
}

func TestCollectHandlesSharingAndCycles(t *testing.T) {
	h := New(testTypes(), 1<<16)
	a, _ := h.AllocObject(2, 2)
	b, _ := h.AllocObject(2, 2)
	// a and b point at each other, and both at a shared node.
	shared, _ := h.AllocObject(1, 2)
	h.StoreWord(shared, 0, 777)
	h.StoreWord(a, 0, uint64(b))
	h.StoreWord(a, 1, uint64(shared))
	h.StoreWord(b, 0, uint64(a))
	h.StoreWord(b, 1, uint64(shared))
	h.Collect(func(visit RootVisitor) { visit(&a) }, nil)
	b2 := Addr(h.LoadWord(a, 0))
	if Addr(h.LoadWord(b2, 0)) != a {
		t.Fatal("cycle broken by GC")
	}
	s1 := Addr(h.LoadWord(a, 1))
	s2 := Addr(h.LoadWord(b2, 1))
	if s1 != s2 {
		t.Fatal("shared object duplicated by GC")
	}
	if h.LoadWord(s1, 0) != 777 {
		t.Fatal("shared payload lost")
	}
	_, entities := h.LiveBytes()
	if entities != 3 {
		t.Fatalf("entities = %d, want 3", entities)
	}
}

func TestCollectByteAndRefArrays(t *testing.T) {
	h := New(testTypes(), 1<<16)
	ba, _ := h.AllocArray(KindByteArr, 5)
	copy(h.Bytes(ba), "hello")
	ra, _ := h.AllocArray(KindRefArr, 3)
	h.StoreWord(ra, 1, uint64(ba))
	h.Collect(func(visit RootVisitor) { visit(&ra) }, nil)
	nb := Addr(h.LoadWord(ra, 1))
	if string(h.Bytes(nb)) != "hello" {
		t.Fatalf("byte array payload lost: %q", h.Bytes(nb))
	}
	if h.LoadWord(ra, 0) != 0 || h.LoadWord(ra, 2) != 0 {
		t.Fatal("null elements disturbed")
	}
}

func TestGrowPreservesGraph(t *testing.T) {
	h := New(testTypes(), 4096)
	var roots []Addr
	for i := 0; i < 20; i++ {
		a, err := h.AllocObject(1, 2)
		if err != nil {
			t.Fatal(err)
		}
		h.StoreWord(a, 0, uint64(1000+i))
		roots = append(roots, a)
	}
	oldSemi := h.SemiSize()
	h.Grow(func(visit RootVisitor) {
		for i := range roots {
			visit(&roots[i])
		}
	}, nil)
	if h.SemiSize() != 2*oldSemi {
		t.Fatalf("semi = %d, want %d", h.SemiSize(), 2*oldSemi)
	}
	for i, a := range roots {
		if h.LoadWord(a, 0) != uint64(1000+i) {
			t.Fatalf("object %d lost after grow", i)
		}
	}
}

func TestGCDeterminism(t *testing.T) {
	// Two identical allocation/collection sequences must produce identical
	// addresses — the property replay depends on.
	run := func() []Addr {
		h := New(testTypes(), 8192)
		var addrs []Addr
		var root Addr
		for i := 0; i < 200; i++ {
			a, err := h.AllocObject(1, 2)
			if err != nil {
				h.Collect(func(visit RootVisitor) { visit(&root) }, nil)
				a, err = h.AllocObject(1, 2)
				if err != nil {
					h.Grow(func(visit RootVisitor) { visit(&root) }, nil)
					a, _ = h.AllocObject(1, 2)
				}
			}
			if i%3 == 0 {
				h.StoreWord(a, 1, uint64(root))
				root = a
			}
			addrs = append(addrs, a)
		}
		return addrs
	}
	a1, a2 := run(), run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("allocation %d: addr %d vs %d", i, a1[i], a2[i])
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	h := New(testTypes(), 8192)
	a, _ := h.AllocObject(0, 2)
	h.StoreWord(a, 0, 123)
	snap := h.Snapshot()
	h.StoreWord(a, 0, 456)
	b, _ := h.AllocObject(0, 2)
	_ = b
	h.Restore(snap)
	if h.LoadWord(a, 0) != 123 {
		t.Fatalf("restore lost value: %d", h.LoadWord(a, 0))
	}
	if h.Used() != snap.Alloc-snap.Base {
		t.Fatal("restore did not rewind allocation pointer")
	}
}

func TestReadBytesBounds(t *testing.T) {
	h := New(testTypes(), 4096)
	buf := make([]byte, 16)
	if err := h.ReadBytes(0, buf); err != nil {
		t.Fatalf("in-bounds peek failed: %v", err)
	}
	if err := h.ReadBytes(Addr(h.MemSize()-8), buf); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

// Property: after a collection with a random live set, every live object
// retains its payload and dead objects are gone.
func TestCollectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(testTypes(), 1<<16)
		type obj struct {
			addr Addr
			val  uint64
		}
		var live []obj
		for i := 0; i < 300; i++ {
			a, err := h.AllocObject(0, 2)
			if err != nil {
				return false
			}
			v := rng.Uint64()
			h.StoreWord(a, 0, v)
			if rng.Intn(2) == 0 {
				live = append(live, obj{a, v})
			}
		}
		h.Collect(func(visit RootVisitor) {
			for i := range live {
				visit(&live[i].addr)
			}
		}, nil)
		_, entities := h.LiveBytes()
		// Shared roots are impossible here, so entity count matches.
		if entities != len(live) {
			return false
		}
		for _, o := range live {
			if h.LoadWord(o.addr, 0) != o.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlloc(b *testing.B) {
	h := New(testTypes(), 1<<24)
	var root Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := h.AllocObject(0, 2)
		if err != nil {
			h.Collect(func(visit RootVisitor) { visit(&root) }, nil)
			a, _ = h.AllocObject(0, 2)
		}
		_ = a
	}
}

func BenchmarkCollect(b *testing.B) {
	h := New(testTypes(), 1<<22)
	var head Addr
	for i := 0; i < 10000; i++ {
		n, _ := h.AllocObject(1, 2)
		h.StoreWord(n, 1, uint64(head))
		head = n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Collect(func(visit RootVisitor) { visit(&head) }, nil)
	}
}

func TestCollectStackRoots(t *testing.T) {
	h := New(testTypes(), 1<<16)
	seg, _ := h.AllocArray(KindInt64Arr, 16)
	obj, _ := h.AllocObject(1, 2)
	h.StoreWord(obj, 0, 4242)
	h.StoreWord(seg, 3, uint64(obj)) // ref in slot 3
	h.StoreWord(seg, 5, 999)         // prim in slot 5
	tags := make([]bool, 16)
	tags[3] = true
	stacks := []StackRoot{{Seg: &seg, Tags: tags, Limit: 8}}
	h.Collect(func(visit RootVisitor) {}, stacks)
	if h.Len(seg) != 16 {
		t.Fatal("segment lost")
	}
	moved := Addr(h.LoadWord(seg, 3))
	if h.LoadWord(moved, 0) != 4242 {
		t.Fatal("stack-referenced object lost")
	}
	if h.LoadWord(seg, 5) != 999 {
		t.Fatal("primitive slot disturbed")
	}
	_, entities := h.LiveBytes()
	if entities != 2 {
		t.Fatalf("entities = %d, want 2", entities)
	}
	// Slots beyond Limit are not scanned: a stale ref there must not
	// resurrect garbage.
	garbage, _ := h.AllocObject(0, 2)
	h.StoreWord(seg, 10, uint64(garbage))
	tags[10] = true
	h.Collect(func(visit RootVisitor) {}, []StackRoot{{Seg: &seg, Tags: tags, Limit: 8}})
	if _, entities := h.LiveBytes(); entities != 2 {
		t.Fatalf("beyond-limit slot scanned: %d entities", entities)
	}
}

func TestHeapSnapshotCodec(t *testing.T) {
	h := New(testTypes(), 8192)
	a, _ := h.AllocObject(1, 2)
	h.StoreWord(a, 0, 424242)
	snap := h.Snapshot()
	var buf []byte
	snap.EncodeTo(&buf)
	dec, rest, err := DecodeSnapshot(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("%v, %d trailing", err, len(rest))
	}
	if dec.Semi != snap.Semi || dec.Base != snap.Base || dec.Alloc != snap.Alloc {
		t.Fatal("header fields differ")
	}
	if string(dec.Mem) != string(snap.Mem) {
		t.Fatal("memory differs")
	}
	// Truncations error, never panic.
	for _, cut := range []int{0, 1, 2, 3, len(buf) / 2, len(buf) - 1} {
		if _, _, err := DecodeSnapshot(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	h2 := New(testTypes(), 8192)
	h2.Restore(dec)
	if h2.LoadWord(a, 0) != 424242 {
		t.Fatal("restore from decoded snapshot lost data")
	}
}
