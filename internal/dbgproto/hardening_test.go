// Hardening tests: the debug server guards a replay session that may
// represent hours of reproduction work, so a hung, hostile, or crashing
// front end must cost at most its own connection — and the front end must
// survive the server going away and coming back.
package dbgproto

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// rawDialAndRead opens a bare TCP connection and reads whatever the server
// sends until EOF, without writing anything. Used to observe the
// capacity-refusal response deterministically (a client write racing the
// server's close could turn into a RST and discard it).
func rawDialAndRead(t *testing.T, addr string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	b, _ := io.ReadAll(conn)
	return string(b)
}

func TestConnectionCapRefusal(t *testing.T) {
	c, _ := startServerOpts(t, &Server{MaxConns: 1})
	// A successful command proves the first connection is being served, so
	// the active count is at 1 before the second connection arrives.
	if _, err := c.Send("status"); err != nil {
		t.Fatal(err)
	}
	got := rawDialAndRead(t, c.conn.RemoteAddr().String())
	if !strings.Contains(got, "ERR server at connection capacity") {
		t.Fatalf("over-cap connection got %q, want capacity refusal", got)
	}
	// The refusal must not cost the served connection anything.
	if _, err := c.Send("status"); err != nil {
		t.Fatalf("in-cap connection broken by refusal: %v", err)
	}
}

func TestIdleConnectionDropped(t *testing.T) {
	c, _ := startServerOpts(t, &Server{IdleTimeout: 50 * time.Millisecond})
	time.Sleep(250 * time.Millisecond)
	if _, err := c.Send("status"); err == nil {
		t.Fatal("idle connection survived past its deadline")
	}
}

func TestExecutePanicBecomesError(t *testing.T) {
	// A nil debugger makes every command dereference nil: the panic must
	// come back as an ERR naming the command, with the connection and the
	// server both intact.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go (&Server{D: nil}).Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	_, err = c.Send("status")
	var remote *RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, `internal error executing "status"`) {
		t.Fatalf("panic did not surface as a remote error naming the command: %v", err)
	}
	// Same connection still serves commands that don't touch the debugger.
	if body, err := c.Send("help"); err != nil || !strings.Contains(body, "commands:") {
		t.Fatalf("connection dead after recovered panic: %q %v", body, err)
	}
}

func TestRemoteErrorIsTyped(t *testing.T) {
	c, _ := startServer(t)
	_, err := c.Send("frobnicate")
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("server-reported failure is %T, want *RemoteError: %v", err, err)
	}
}

// TestReconnectingSurvivesServerRestart walks the full outage story: the
// client talks to a server, the server dies, a replacement comes up on the
// same address, and the next command transparently lands on it.
func TestReconnectingSurvivesServerRestart(t *testing.T) {
	_, d := startServer(t)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	go (&Server{D: d}).Serve(l1)

	r, err := DialRetry(addr, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	if _, err := r.Send("status"); err != nil {
		t.Fatal(err)
	}

	// Server-reported failures pass through without tearing the connection.
	var remote *RemoteError
	if _, err := r.Send("nosuchcmd"); !errors.As(err, &remote) {
		t.Fatalf("want *RemoteError through the reconnecting client, got %v", err)
	}

	// "quit" makes the server close our connection cleanly; killing the
	// listener then simulates the whole process dying.
	if _, err := r.Send("quit"); err != nil {
		t.Fatal(err)
	}
	l1.Close()

	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	t.Cleanup(func() { l2.Close() })
	go (&Server{D: d}).Serve(l2)

	body, err := r.Send("help")
	if err != nil || !strings.Contains(body, "commands:") {
		t.Fatalf("command after server restart: %q %v", body, err)
	}
}

func TestDialRetryGivesUp(t *testing.T) {
	// A dead listener address: dialing must fail after the capped attempts,
	// quickly, with the address in the error.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	r := &Reconnecting{Addr: addr, MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	if _, err := r.Send("status"); err == nil || !strings.Contains(err.Error(), addr) {
		t.Fatalf("want unreachable error naming %s, got %v", addr, err)
	}
}
