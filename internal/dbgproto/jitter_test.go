// Reconnect backoff jitter: every step spreads over [0.8d, 1.2d) so a
// fleet cut off by one server restart doesn't redial in lockstep, and the
// spread is deterministically seedable so tests (and incident replays) see
// the exact same schedule every run.
package dbgproto

import (
	"fmt"
	"testing"
	"time"
)

func TestJitterSpreadsAndSeedsDeterministically(t *testing.T) {
	a := &Reconnecting{JitterSeed: 7}
	b := &Reconnecting{JitterSeed: 7}
	c := &Reconnecting{JitterSeed: 8}
	base := 100 * time.Millisecond
	diverged := false
	for i := 0; i < 32; i++ {
		ja, jb, jc := a.jitter(base), b.jitter(base), c.jitter(base)
		if ja != jb {
			t.Fatalf("step %d: same seed diverged (%v vs %v)", i, ja, jb)
		}
		if ja < 80*time.Millisecond || ja >= 120*time.Millisecond {
			t.Fatalf("step %d: jitter %v outside [0.8d, 1.2d)", i, ja)
		}
		if ja != jc {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 32-step schedules")
	}
}

// TestConnectBackoffFollowsSeededSchedule dials a dead address and checks
// the retry notices announce exactly the schedule an identically seeded
// twin predicts: doubling base delay, each step jittered, fully
// reproducible from the seed.
func TestConnectBackoffFollowsSeededSchedule(t *testing.T) {
	var sleeps []time.Duration
	r := &Reconnecting{
		Addr:        "127.0.0.1:1", // reserved port: connect refuses instantly
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		JitterSeed:  42,
		Logf: func(format string, args ...any) {
			// The sleep is the last verb of the retry notice.
			sleeps = append(sleeps, args[len(args)-1].(time.Duration))
			_ = fmt.Sprintf(format, args...)
		},
	}
	if err := r.connect(); err == nil {
		t.Fatal("connect to a dead address succeeded")
	}
	twin := &Reconnecting{JitterSeed: 42}
	want := []time.Duration{twin.jitter(time.Millisecond), twin.jitter(2 * time.Millisecond)}
	if len(sleeps) != len(want) {
		t.Fatalf("observed %d backoff steps (%v), want %d", len(sleeps), sleeps, len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("step %d slept %v, want seeded schedule %v", i, sleeps[i], want[i])
		}
	}
}
