// Regression tests for the capacity-refusal write deadline: the refusal
// path used to hardcode a 5s SetWriteDeadline, silently overriding the
// server's configured WriteTimeout — including WriteTimeout<0, the "no
// deadline" setting every served response already honored via pickLimit.
package dbgproto

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeAddr satisfies net.Addr for the in-memory conn.
type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// deadlineConn is an in-memory net.Conn that records every write-deadline
// the server sets and captures what it writes. Reads block until Close so
// a served connection holds its slot for the duration of the test.
type deadlineConn struct {
	mu        sync.Mutex
	wrote     bytes.Buffer
	deadlines []time.Time
	closed    chan struct{}
	closeOnce sync.Once
}

func newDeadlineConn() *deadlineConn { return &deadlineConn{closed: make(chan struct{})} }

func (c *deadlineConn) Read(p []byte) (int, error) { <-c.closed; return 0, net.ErrClosed }
func (c *deadlineConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote.Write(p)
}
func (c *deadlineConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
func (c *deadlineConn) LocalAddr() net.Addr                { return fakeAddr{} }
func (c *deadlineConn) RemoteAddr() net.Addr               { return fakeAddr{} }
func (c *deadlineConn) SetDeadline(t time.Time) error      { return nil }
func (c *deadlineConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *deadlineConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadlines = append(c.deadlines, t)
	return nil
}

func (c *deadlineConn) snapshot() (string, []time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote.String(), append([]time.Time(nil), c.deadlines...)
}

// fakeListener hands the server a fixed sequence of conns, then blocks
// until closed.
type fakeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newFakeListener(conns ...net.Conn) *fakeListener {
	l := &fakeListener{conns: make(chan net.Conn, len(conns)), done: make(chan struct{})}
	for _, c := range conns {
		l.conns <- c
	}
	return l
}

func (l *fakeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}
func (l *fakeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}
func (l *fakeListener) Addr() net.Addr { return fakeAddr{} }

// refuseOn runs srv over two fake conns — the first holds the only slot,
// the second is refused — and returns the refused conn after its refusal
// has been written.
func refuseOn(t *testing.T, srv *Server) *deadlineConn {
	t.Helper()
	srv.MaxConns = 1
	held, refused := newDeadlineConn(), newDeadlineConn()
	l := newFakeListener(held, refused)
	t.Cleanup(func() { l.Close(); held.Close() })
	go srv.Serve(l)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if wrote, _ := refused.snapshot(); strings.Contains(wrote, "connection capacity") {
			return refused
		}
		time.Sleep(time.Millisecond)
	}
	wrote, _ := refused.snapshot()
	t.Fatalf("refusal never written; refused conn saw %q", wrote)
	return nil
}

func TestRefusalHonorsConfiguredWriteTimeout(t *testing.T) {
	start := time.Now()
	refused := refuseOn(t, &Server{WriteTimeout: 250 * time.Millisecond})
	_, deadlines := refused.snapshot()
	if len(deadlines) != 1 {
		t.Fatalf("refused conn saw %d write deadlines, want 1", len(deadlines))
	}
	// The deadline must reflect the configured 250ms, not the old
	// hardcoded 5s.
	if d := deadlines[0].Sub(start); d <= 0 || d > 2*time.Second {
		t.Fatalf("refusal write deadline %v after start, want ~250ms", d)
	}
}

func TestRefusalHonorsNoDeadline(t *testing.T) {
	// WriteTimeout < 0 means "no deadline" on every served response;
	// the refusal path must not impose one either.
	refused := refuseOn(t, &Server{WriteTimeout: -1})
	wrote, deadlines := refused.snapshot()
	if len(deadlines) != 0 {
		t.Fatalf("refused conn saw write deadlines %v, want none with WriteTimeout<0", deadlines)
	}
	if !strings.Contains(wrote, "ERR server at connection capacity") {
		t.Fatalf("refusal body = %q", wrote)
	}
}
