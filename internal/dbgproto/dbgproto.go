// Package dbgproto is the wire protocol between the debugger core (the
// tool process) and its front end, mirroring the paper's §4 architecture:
// the GUI runs in a third process and talks to the debugger over TCP,
// exchanging small packets of text rather than images.
//
// Requests are single lines. Responses are a status line ("OK" or
// "ERR <message>"), any number of body lines, and a terminating "." line.
package dbgproto

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dejavu/internal/debugger"
	"dejavu/internal/obs"
)

// Hardening defaults. A debug server lives next to a replay worth hours of
// reproduction work; one hung or hostile front end must not take it down.
const (
	DefaultMaxConns     = 8
	DefaultIdleTimeout  = 10 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// Server exposes one Debugger over a listener. Commands execute serially.
// Connections beyond MaxConns are refused with an error response; an idle
// or unwritable connection is dropped at its deadline; a panic while
// executing a command is returned as an ERR response instead of killing
// the process.
type Server struct {
	D *debugger.Debugger

	// Session, when set, serves a journal-backed debugging session whose
	// embedded Debugger is replaced wholesale on durable re-seeds: every
	// command then resolves the CURRENT debugger through Session.D, and
	// travel routes through Session.TravelTo so targets before the
	// in-memory checkpoint window re-seed from durable checkpoints instead
	// of failing. D is ignored when Session is set.
	Session *debugger.JournalSession

	// Resolver, when set, switches the server into multi-session mode: a
	// connection's first useful command is `attach <session-id>`, and every
	// later command executes against that session under ITS lock (and the
	// pool's worker budget) rather than the server-wide command mutex, so
	// commands on different sessions proceed concurrently. D and Session
	// are ignored when Resolver is set.
	Resolver SessionResolver

	// Obs, when set, receives service metrics: connections (accepted,
	// refused, active, deadline drops) and per-command counts and latency.
	// Metric collection happens outside the command lock's protected state
	// and never touches the VM, so an observed session replays identically
	// to a bare one.
	Obs *obs.Registry

	MaxConns     int           // concurrent connections (0 = DefaultMaxConns, <0 = unlimited)
	IdleTimeout  time.Duration // per-read deadline (0 = DefaultIdleTimeout, <0 = none)
	WriteTimeout time.Duration // per-response deadline (0 = DefaultWriteTimeout, <0 = none)

	mu       sync.Mutex
	active   atomic.Int32
	initOnce sync.Once
	m        serverMetrics
}

// serverMetrics holds the server's obs series; all nil-safe no-ops when
// Obs is unset.
type serverMetrics struct {
	conns    *obs.Counter   // connections accepted
	refused  *obs.Counter   // connections refused at capacity
	active   *obs.Gauge     // connections currently open
	drops    *obs.Counter   // connections dropped at an idle/write deadline
	commands *obs.Counter   // commands executed
	cmdErrs  *obs.Counter   // commands answered with ERR
	latency  *obs.Histogram // per-command execution time
}

func (s *Server) metrics() *serverMetrics {
	s.initOnce.Do(func() {
		s.m = serverMetrics{
			conns:    s.Obs.Counter("dv_dbg_connections_total"),
			refused:  s.Obs.Counter("dv_dbg_connections_refused_total"),
			active:   s.Obs.Gauge("dv_dbg_connections_active"),
			drops:    s.Obs.Counter("dv_dbg_deadline_drops_total"),
			commands: s.Obs.Counter("dv_dbg_commands_total"),
			cmdErrs:  s.Obs.Counter("dv_dbg_command_errors_total"),
			latency:  s.Obs.Histogram("dv_dbg_command_seconds"),
		}
	})
	return &s.m
}

// debugger resolves the current debugger. Must be called under s.mu: a
// journal session's embedded Debugger is swapped during durable re-seeds.
func (s *Server) debugger() *debugger.Debugger {
	if s.Session != nil {
		return s.Session.D
	}
	return s.D
}

// SessionResolver maps session IDs to attachable debugging sessions. The
// multi-tenant session manager implements it; the interface lives here so
// the protocol layer needs no dependency on session storage.
type SessionResolver interface {
	// AttachSession resolves id to a handle for command execution. A
	// failure (unknown id, killed session, admission refusal) is returned
	// as an error whose message is shown to the client verbatim.
	AttachSession(id string) (SessionHandle, error)
}

// SessionHandle executes commands against one attached session.
type SessionHandle interface {
	// Exec runs f under the session's command lock and the pool's worker
	// budget. cur resolves the session's CURRENT debugger — travel through
	// a journal re-seed replaces it wholesale, so f must re-resolve after
	// traveling rather than hold a *Debugger across the call. Exec may
	// refuse with a structured error when the session is killed or the
	// budget is exhausted.
	Exec(f func(cur func() *debugger.Debugger, travel func(uint64) error) error) error
	// Detach releases the attachment (connection closed or re-attached).
	Detach()
}

func pickLimit[T int | time.Duration](v, def T) T {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0 // explicit "unlimited"
	default:
		return v
	}
}

// Locked runs f while holding the command-serialization lock, so external
// code (e.g. a shutdown handler snapshotting the VM) can act between
// debugger commands, never during one.
func (s *Server) Locked(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		m := s.metrics()
		if max := pickLimit(s.MaxConns, DefaultMaxConns); max > 0 && s.active.Load() >= int32(max) {
			m.refused.Inc()
			s.refuse(conn)
			continue
		}
		s.active.Add(1)
		m.conns.Inc()
		m.active.Inc()
		go func() {
			defer func() {
				s.active.Add(-1)
				m.active.Dec()
			}()
			s.serveConn(conn)
		}()
	}
}

// refuse answers an over-capacity connection with a protocol-shaped error
// so the client reports something better than a hangup. The refusal write
// honors the server's configured WriteTimeout — this path used to hardcode
// a 5s deadline, so a server configured with no write deadline (<0) could
// still drop a slow client mid-refusal.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	if write := pickLimit(s.WriteTimeout, DefaultWriteTimeout); write > 0 {
		conn.SetWriteDeadline(time.Now().Add(write))
	}
	fmt.Fprintf(conn, "ERR server at connection capacity\n.\n")
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	// A panic in the connection plumbing drops this connection only.
	defer func() { recover() }()
	// Multi-session mode: the connection's attachment, set by `attach`.
	var h SessionHandle
	defer func() {
		if h != nil {
			h.Detach()
		}
	}()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	idle := pickLimit(s.IdleTimeout, DefaultIdleTimeout)
	write := pickLimit(s.WriteTimeout, DefaultWriteTimeout)
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		if !sc.Scan() {
			if ne, ok := sc.Err().(net.Error); ok && ne.Timeout() {
				s.metrics().drops.Inc()
			}
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		if line == "quit" {
			fmt.Fprintf(w, "OK\nbye\n.\n")
			w.Flush()
			return
		}
		body, err := s.execute(line, &h)
		if err != nil {
			fmt.Fprintf(w, "ERR %s\n.\n", strings.ReplaceAll(err.Error(), "\n", " "))
		} else {
			fmt.Fprintf(w, "OK\n")
			if body != "" {
				w.WriteString(strings.TrimRight(body, "\n"))
				w.WriteString("\n")
			}
			fmt.Fprintf(w, ".\n")
		}
		if werr := w.Flush(); werr != nil {
			if ne, ok := werr.(net.Error); ok && ne.Timeout() {
				s.metrics().drops.Inc()
			}
			return
		}
	}
}

// execute runs one command. A panic inside a command surfaces as an error
// response: the session survives, and the message names the command so the
// defect is findable.
func (s *Server) execute(line string, h *SessionHandle) (body string, err error) {
	m := s.metrics()
	m.commands.Inc()
	start := time.Now()
	fields := strings.Fields(line)
	defer func() {
		if r := recover(); r != nil {
			body = ""
			err = fmt.Errorf("internal error executing %q: %v", fields[0], r)
		}
		m.latency.ObserveSince(start)
		if err != nil {
			m.cmdErrs.Inc()
		}
	}()
	if s.Resolver != nil {
		return s.executeSession(fields, h)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	travel := s.debugger().TravelTo
	if s.Session != nil {
		// A journal session owns travel: targets before the in-memory
		// checkpoint window re-seed from a durable checkpoint, which
		// replaces the embedded Debugger wholesale.
		travel = s.Session.TravelTo
	}
	return runCommand(s.debugger, travel, fields)
}

// executeSession dispatches one command in multi-session mode: `attach`
// binds the connection to a session; everything else runs under that
// session's lock via its handle. The server-wide mutex is NOT held, so
// sessions execute concurrently up to the pool's worker budget.
func (s *Server) executeSession(fields []string, h *SessionHandle) (string, error) {
	if fields[0] == "attach" {
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: attach <session-id>")
		}
		nh, err := s.Resolver.AttachSession(fields[1])
		if err != nil {
			return "", err
		}
		if *h != nil {
			(*h).Detach()
		}
		*h = nh
		return fmt.Sprintf("attached %s", fields[1]), nil
	}
	if fields[0] == "help" {
		return helpText, nil
	}
	if *h == nil {
		return "", fmt.Errorf("no session attached (use: attach <session-id>)")
	}
	var body string
	err := (*h).Exec(func(cur func() *debugger.Debugger, travel func(uint64) error) error {
		var cerr error
		body, cerr = runCommand(cur, travel, fields)
		return cerr
	})
	return body, err
}

// runCommand executes one already-tokenized command against a debugger.
// The caller holds whatever lock serializes commands for that debugger and
// supplies cur (resolving the CURRENT debugger — journal re-seeds replace
// it wholesale) plus the travel routing (a journal session's TravelTo
// re-seeds from durable checkpoints; a flat session travels in-memory).
func runCommand(cur func() *debugger.Debugger, travel func(uint64) error, fields []string) (string, error) {
	d := cur()
	switch fields[0] {
	case "break":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: break <Class.method> <pc>")
		}
		pc, err := strconv.Atoi(fields[2])
		if err != nil {
			return "", err
		}
		n, err := d.BreakAt(fields[1], pc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("breakpoint #%d set", n), nil
	case "breakline":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: breakline <Class.method> <line>")
		}
		ln, err := strconv.Atoi(fields[2])
		if err != nil {
			return "", err
		}
		n, err := d.BreakAtLine(fields[1], ln)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("breakpoint #%d set", n), nil
	case "clear":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: clear <n>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", err
		}
		if !d.ClearBreakpoint(n) {
			return "", fmt.Errorf("no breakpoint #%d", n)
		}
		return "cleared", nil
	case "breakpoints":
		return strings.Join(d.Breakpoints(), "\n"), nil
	case "continue":
		reason, err := d.Continue()
		if err != nil {
			return "", err
		}
		return "stopped: " + reason.String() + "\n" + d.Status(), nil
	case "step":
		n := 1
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return "", err
			}
			n = v
		}
		reason, err := d.StepInstr(n)
		if err != nil {
			return "", err
		}
		return "stopped: " + reason.String() + "\n" + d.Status(), nil
	case "status":
		return d.Status(), nil
	case "stack":
		tid := 0
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return "", err
			}
			tid = v
		}
		return d.StackTrace(tid)
	case "threads":
		return d.ThreadList()
	case "print":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: print <Class.static>")
		}
		return d.PrintStatic(fields[1])
	case "set":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: set <Class.static> <value>")
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return "", err
		}
		if err := d.SetStatic(fields[1], v); err != nil {
			return "", err
		}
		return "modified — replay accuracy is no longer guaranteed (§3.2)", nil
	case "disasm":
		return d.Disassembly()
	case "travel":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: travel <event>")
		}
		ev, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "", err
		}
		if err := travel(ev); err != nil {
			return "", err
		}
		// Re-resolve: a journal travel may have replaced the debugger.
		return cur().Status(), nil
	case "save":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: save <file>")
		}
		snap, err := d.VM.Snapshot()
		if err != nil {
			return "", err
		}
		blob := snap.Encode(d.VM.Hash())
		if err := os.WriteFile(fields[1], blob, 0o644); err != nil {
			return "", err
		}
		return fmt.Sprintf("checkpoint at event %d -> %s (%d bytes); resume with dvserve -restore",
			d.VM.Events(), fields[1], len(blob)), nil
	case "heap":
		return d.HeapSummary()
	case "inspect":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: inspect <addr>")
		}
		a, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "", err
		}
		return d.InspectObject(a)
	case "output":
		return string(d.VM.Output()), nil
	case "help":
		return helpText, nil
	default:
		return "", fmt.Errorf("unknown command %q (try help)", fields[0])
	}
}

const helpText = `commands:
  attach <session-id>           bind this connection to a session (multi-tenant server)
  break <Class.method> <pc>     set breakpoint at bytecode offset
  breakline <Class.method> <n>  set breakpoint at source line
  clear <n>                     remove breakpoint #n
  breakpoints                   list breakpoints
  continue                      run to next breakpoint or end
  step [n]                      execute n instructions (default 1)
  status                        show stop location and replay countdown
  stack [tid]                   stack trace via remote reflection
  threads                       thread viewer
  print <Class.static>          read a static via remote reflection
  set <Class.static> <value>    modify a static (taints the session, §3.2)
  disasm                        disassemble current method
  travel <event>                time-travel to an event count
  save <file>                   write a checkpoint file (resume via dvserve -restore)
  heap                          per-type heap statistics
  inspect <addr>                show an object's fields via remote reflection
  output                        program output so far
  quit                          disconnect`

// Client is a front-end connection.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	mu   sync.Mutex
}

// Dial connects to a debug server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }

// Send issues one command and returns the response body.
func (c *Client) Send(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		return "", err
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	status = strings.TrimRight(status, "\n")
	var body strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimRight(line, "\n") == "." {
			break
		}
		body.WriteString(line)
	}
	if strings.HasPrefix(status, "ERR ") {
		return "", &RemoteError{Msg: strings.TrimPrefix(status, "ERR ")}
	}
	return body.String(), nil
}

// RemoteError is a server-reported command failure ("ERR ..."): the
// connection itself is healthy, so a reconnecting client must not treat it
// as transport loss.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Reconnecting is a Client that survives server restarts and dropped
// connections: a transport failure closes the connection, redials with
// capped exponential backoff, and retries the command once. Each backoff
// step is jittered ±20% so a fleet of clients cut off by one server
// restart doesn't redial in lockstep and hammer the listener in
// synchronized waves. Command failures the server reports (RemoteError)
// pass through untouched.
type Reconnecting struct {
	Addr string

	MaxAttempts int                              // dial attempts per (re)connect; 0 = 6
	BaseDelay   time.Duration                    // first backoff step; 0 = 100ms
	MaxDelay    time.Duration                    // backoff cap; 0 = 3s
	Logf        func(format string, args ...any) // optional reconnect notices
	// JitterSeed seeds the backoff jitter deterministically (tests); 0
	// derives a per-client seed from the clock.
	JitterSeed int64

	mu  sync.Mutex
	c   *Client
	rnd *rand.Rand
}

// jitter spreads d over [0.8d, 1.2d). Callers hold r.mu (or own r
// exclusively, as connect's callers do).
func (r *Reconnecting) jitter(d time.Duration) time.Duration {
	if r.rnd == nil {
		seed := r.JitterSeed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		r.rnd = rand.New(rand.NewSource(seed))
	}
	return time.Duration(float64(d) * (0.8 + 0.4*r.rnd.Float64()))
}

// DialRetry connects to a debug server with backoff, returning a client
// that keeps reconnecting across transport failures. logf (optional)
// receives human-readable retry notices.
func DialRetry(addr string, logf func(string, ...any)) (*Reconnecting, error) {
	r := &Reconnecting{Addr: addr, Logf: logf}
	if err := r.connect(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reconnecting) connect() error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 6
	}
	delay := r.BaseDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 3 * time.Second
	}
	var err error
	for i := 0; i < attempts; i++ {
		var c *Client
		if c, err = Dial(r.Addr); err == nil {
			r.c = c
			return nil
		}
		if i == attempts-1 {
			break
		}
		sleep := r.jitter(delay)
		if r.Logf != nil {
			r.Logf("connect %s failed (%v); retrying in %v", r.Addr, err, sleep)
		}
		time.Sleep(sleep)
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
	return fmt.Errorf("dbgproto: %s unreachable after %d attempts: %w", r.Addr, attempts, err)
}

// Send issues one command, transparently reconnecting (and retrying the
// command once) if the transport fails under it.
func (r *Reconnecting) Send(cmd string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		if err := r.connect(); err != nil {
			return "", err
		}
	}
	body, err := r.c.Send(cmd)
	if err == nil {
		return body, nil
	}
	if _, isRemote := err.(*RemoteError); isRemote {
		return "", err
	}
	// Transport loss: drop the dead connection, redial, retry once.
	r.c.Close()
	r.c = nil
	if r.Logf != nil {
		r.Logf("connection to %s lost (%v); reconnecting", r.Addr, err)
	}
	if cerr := r.connect(); cerr != nil {
		return "", fmt.Errorf("connection lost (%v); %w", err, cerr)
	}
	return r.c.Send(cmd)
}

// Close shuts the current connection, if any.
func (r *Reconnecting) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}
