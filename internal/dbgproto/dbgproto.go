// Package dbgproto is the wire protocol between the debugger core (the
// tool process) and its front end, mirroring the paper's §4 architecture:
// the GUI runs in a third process and talks to the debugger over TCP,
// exchanging small packets of text rather than images.
//
// Requests are single lines. Responses are a status line ("OK" or
// "ERR <message>"), any number of body lines, and a terminating "." line.
package dbgproto

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"dejavu/internal/debugger"
)

// Server exposes one Debugger over a listener. Commands execute serially.
type Server struct {
	D  *debugger.Debugger
	mu sync.Mutex
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "quit" {
			fmt.Fprintf(w, "OK\nbye\n.\n")
			w.Flush()
			return
		}
		body, err := s.execute(line)
		if err != nil {
			fmt.Fprintf(w, "ERR %s\n.\n", strings.ReplaceAll(err.Error(), "\n", " "))
		} else {
			fmt.Fprintf(w, "OK\n")
			if body != "" {
				w.WriteString(strings.TrimRight(body, "\n"))
				w.WriteString("\n")
			}
			fmt.Fprintf(w, ".\n")
		}
		w.Flush()
	}
}

// execute runs one command against the debugger.
func (s *Server) execute(line string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fields := strings.Fields(line)
	d := s.D
	switch fields[0] {
	case "break":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: break <Class.method> <pc>")
		}
		pc, err := strconv.Atoi(fields[2])
		if err != nil {
			return "", err
		}
		n, err := d.BreakAt(fields[1], pc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("breakpoint #%d set", n), nil
	case "breakline":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: breakline <Class.method> <line>")
		}
		ln, err := strconv.Atoi(fields[2])
		if err != nil {
			return "", err
		}
		n, err := d.BreakAtLine(fields[1], ln)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("breakpoint #%d set", n), nil
	case "clear":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: clear <n>")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", err
		}
		if !d.ClearBreakpoint(n) {
			return "", fmt.Errorf("no breakpoint #%d", n)
		}
		return "cleared", nil
	case "breakpoints":
		return strings.Join(d.Breakpoints(), "\n"), nil
	case "continue":
		reason, err := d.Continue()
		if err != nil {
			return "", err
		}
		return "stopped: " + reason.String() + "\n" + d.Status(), nil
	case "step":
		n := 1
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return "", err
			}
			n = v
		}
		reason, err := d.StepInstr(n)
		if err != nil {
			return "", err
		}
		return "stopped: " + reason.String() + "\n" + d.Status(), nil
	case "status":
		return d.Status(), nil
	case "stack":
		tid := 0
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return "", err
			}
			tid = v
		}
		return d.StackTrace(tid)
	case "threads":
		return d.ThreadList()
	case "print":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: print <Class.static>")
		}
		return d.PrintStatic(fields[1])
	case "set":
		if len(fields) != 3 {
			return "", fmt.Errorf("usage: set <Class.static> <value>")
		}
		v, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return "", err
		}
		if err := d.SetStatic(fields[1], v); err != nil {
			return "", err
		}
		return "modified — replay accuracy is no longer guaranteed (§3.2)", nil
	case "disasm":
		return d.Disassembly()
	case "travel":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: travel <event>")
		}
		ev, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "", err
		}
		if err := d.TravelTo(ev); err != nil {
			return "", err
		}
		return d.Status(), nil
	case "save":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: save <file>")
		}
		snap, err := d.VM.Snapshot()
		if err != nil {
			return "", err
		}
		blob := snap.Encode(d.VM.Hash())
		if err := os.WriteFile(fields[1], blob, 0o644); err != nil {
			return "", err
		}
		return fmt.Sprintf("checkpoint at event %d -> %s (%d bytes); resume with dvserve -restore",
			d.VM.Events(), fields[1], len(blob)), nil
	case "heap":
		return d.HeapSummary()
	case "inspect":
		if len(fields) != 2 {
			return "", fmt.Errorf("usage: inspect <addr>")
		}
		a, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return "", err
		}
		return d.InspectObject(a)
	case "output":
		return string(d.VM.Output()), nil
	case "help":
		return helpText, nil
	default:
		return "", fmt.Errorf("unknown command %q (try help)", fields[0])
	}
}

const helpText = `commands:
  break <Class.method> <pc>     set breakpoint at bytecode offset
  breakline <Class.method> <n>  set breakpoint at source line
  clear <n>                     remove breakpoint #n
  breakpoints                   list breakpoints
  continue                      run to next breakpoint or end
  step [n]                      execute n instructions (default 1)
  status                        show stop location and replay countdown
  stack [tid]                   stack trace via remote reflection
  threads                       thread viewer
  print <Class.static>          read a static via remote reflection
  set <Class.static> <value>    modify a static (taints the session, §3.2)
  disasm                        disassemble current method
  travel <event>                time-travel to an event count
  save <file>                   write a checkpoint file (resume via dvserve -restore)
  heap                          per-type heap statistics
  inspect <addr>                show an object's fields via remote reflection
  output                        program output so far
  quit                          disconnect`

// Client is a front-end connection.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	mu   sync.Mutex
}

// Dial connects to a debug server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close disconnects.
func (c *Client) Close() error { return c.conn.Close() }

// Send issues one command and returns the response body.
func (c *Client) Send(cmd string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		return "", err
	}
	status, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	status = strings.TrimRight(status, "\n")
	var body strings.Builder
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return "", err
		}
		if strings.TrimRight(line, "\n") == "." {
			break
		}
		body.WriteString(line)
	}
	if strings.HasPrefix(status, "ERR ") {
		return "", fmt.Errorf("%s", strings.TrimPrefix(status, "ERR "))
	}
	return body.String(), nil
}
