package dbgproto

import (
	"net"
	"strings"
	"testing"

	"dejavu/internal/core"
	"dejavu/internal/debugger"
	"dejavu/internal/replaycheck"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

func startServer(t *testing.T) (*Client, *debugger.Debugger) {
	t.Helper()
	return startServerOpts(t, &Server{})
}

// startServerOpts serves a fresh bank-replay debugger through the caller's
// Server (so tests can set hardening limits) and returns a connected client.
func startServerOpts(t *testing.T, srv *Server) (*Client, *debugger.Debugger) {
	t.Helper()
	prog := workloads.Bank(2, 4, 100)
	rec, err := replaycheck.Record(prog, replaycheck.Options{Seed: 3})
	if err != nil || rec.RunErr != nil {
		t.Fatalf("record: %v %v", err, rec.RunErr)
	}
	ecfg := core.DefaultConfig(core.ModeReplay)
	ecfg.ProgHash = vm.ProgramHash(prog)
	ecfg.TraceIn = rec.Trace
	eng, _ := core.NewEngine(ecfg)
	m, err := vm.New(prog, vm.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	d := debugger.New(m)
	srv.D = d
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, d
}

func TestSessionEndToEnd(t *testing.T) {
	c, _ := startServer(t)

	body, err := c.Send("break Main.teller 0")
	if err != nil || !strings.Contains(body, "breakpoint #1 set") {
		t.Fatalf("break: %q %v", body, err)
	}
	body, err = c.Send("continue")
	if err != nil || !strings.Contains(body, "stopped: breakpoint") {
		t.Fatalf("continue: %q %v", body, err)
	}
	body, err = c.Send("stack 1")
	if err != nil || !strings.Contains(body, "Main.teller") {
		t.Fatalf("stack: %q %v", body, err)
	}
	body, err = c.Send("threads")
	if err != nil || !strings.Contains(body, "thread 0") {
		t.Fatalf("threads: %q %v", body, err)
	}
	body, err = c.Send("print Main.done")
	if err != nil || !strings.Contains(body, "Main.done = ") {
		t.Fatalf("print: %q %v", body, err)
	}
	body, err = c.Send("step 50")
	if err != nil || !strings.Contains(body, "stopped:") {
		t.Fatalf("step: %q %v", body, err)
	}
	body, err = c.Send("disasm")
	if err != nil || !strings.Contains(body, "=>") {
		t.Fatalf("disasm: %q %v", body, err)
	}
	if _, err := c.Send("breakpoints"); err != nil {
		t.Fatal(err)
	}
	body, err = c.Send("clear 1")
	if err != nil || !strings.Contains(body, "cleared") {
		t.Fatalf("clear: %q %v", body, err)
	}
	body, err = c.Send("continue")
	if err != nil || !strings.Contains(body, "stopped: halted") {
		t.Fatalf("final continue: %q %v", body, err)
	}
	body, err = c.Send("output")
	if err != nil || !strings.Contains(body, "400") { // 4 accounts × 100
		t.Fatalf("output: %q %v", body, err)
	}
}

func TestProtocolErrors(t *testing.T) {
	c, _ := startServer(t)
	cases := []string{
		"frobnicate",
		"break Main.nosuch 0",
		"break Main.main",
		"clear 99",
		"print NotAClass.x",
		"travel notanumber",
		"step abc",
	}
	for _, cmd := range cases {
		if _, err := c.Send(cmd); err == nil {
			t.Errorf("command %q should fail", cmd)
		}
	}
	// The connection survives errors.
	if _, err := c.Send("status"); err != nil {
		t.Fatalf("connection broken after errors: %v", err)
	}
	if body, err := c.Send("help"); err != nil || !strings.Contains(body, "commands:") {
		t.Fatalf("help: %v", err)
	}
}

func TestTravelOverProtocol(t *testing.T) {
	c, d := startServer(t)
	d.CheckpointEvery = 1000
	if _, err := c.Send("step 8000"); err != nil {
		t.Fatal(err)
	}
	body, err := c.Send("travel 3000")
	if err != nil || !strings.Contains(body, "events=3000") {
		t.Fatalf("travel: %q %v", body, err)
	}
}

func TestQuit(t *testing.T) {
	c, _ := startServer(t)
	body, err := c.Send("quit")
	if err != nil || !strings.Contains(body, "bye") {
		t.Fatalf("quit: %q %v", body, err)
	}
}

func TestHeapAndInspectCommands(t *testing.T) {
	c, d := startServer(t)
	d.StepInstr(15_000)
	body, err := c.Send("heap")
	if err != nil || !strings.Contains(body, "objects") || !strings.Contains(body, "[int64]") {
		t.Fatalf("heap: %q %v", body, err)
	}
	// Find a program object to inspect: Main.lockobj.
	ps, err := c.Send("print Main.lockobj")
	if err != nil {
		t.Fatal(err)
	}
	// ps looks like "Main.lockobj = ref @1234"
	i := strings.LastIndex(ps, "@")
	if i < 0 {
		t.Fatalf("no address in %q", ps)
	}
	addr := strings.TrimSpace(ps[i+1:])
	body, err = c.Send("inspect " + addr)
	if err != nil || !strings.Contains(body, "Main @") {
		t.Fatalf("inspect: %q %v", body, err)
	}
	if _, err := c.Send("inspect 99999999"); err == nil {
		t.Fatal("expected inspect error for bad address")
	}
}
