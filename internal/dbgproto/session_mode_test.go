// Multi-session (Resolver) mode: the same wire protocol, but every
// connection must bind to a session with `attach` before commands run, and
// commands route through the session's own handle.
package dbgproto

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dejavu/internal/core"
	"dejavu/internal/debugger"
	"dejavu/internal/replaycheck"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

// fakeResolver serves debuggers by ID with a per-session lock, the same
// contract the sessions registry implements.
type fakeResolver struct {
	mu       sync.Mutex
	sessions map[string]*debugger.Debugger
	attaches int
	detaches int
}

func (r *fakeResolver) AttachSession(id string) (SessionHandle, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.sessions[id]
	if !ok {
		return nil, fmt.Errorf("no session %q", id)
	}
	r.attaches++
	return &fakeHandle{r: r, d: d}, nil
}

type fakeHandle struct {
	r *fakeResolver
	d *debugger.Debugger
}

func (h *fakeHandle) Exec(f func(cur func() *debugger.Debugger, travel func(uint64) error) error) error {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return f(func() *debugger.Debugger { return h.d }, func(uint64) error {
		return fmt.Errorf("travel unsupported")
	})
}

func (h *fakeHandle) Detach() {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	h.r.detaches++
}

func bankDebugger(t *testing.T, seed int64) *debugger.Debugger {
	t.Helper()
	prog := workloads.Bank(2, 4, 100)
	rec, err := replaycheck.Record(prog, replaycheck.Options{Seed: seed})
	if err != nil || rec.RunErr != nil {
		t.Fatalf("record: %v %v", err, rec.RunErr)
	}
	ecfg := core.DefaultConfig(core.ModeReplay)
	ecfg.ProgHash = vm.ProgramHash(prog)
	ecfg.TraceIn = rec.Trace
	eng, _ := core.NewEngine(ecfg)
	m, err := vm.New(prog, vm.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	return debugger.New(m)
}

func TestResolverModeAttachAndExec(t *testing.T) {
	r := &fakeResolver{sessions: map[string]*debugger.Debugger{
		"s1": bankDebugger(t, 3),
		"s2": bankDebugger(t, 4),
	}}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go (&Server{Resolver: r}).Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Commands before attach are refused with guidance; help still works.
	if _, err := c.Send("status"); err == nil || !strings.Contains(err.Error(), "attach <session-id>") {
		t.Fatalf("unattached status: %v, want attach guidance", err)
	}
	if body, err := c.Send("help"); err != nil || !strings.Contains(body, "attach <session-id>") {
		t.Fatalf("help: %q %v", body, err)
	}

	// Attach and run commands against the bound session.
	if body, err := c.Send("attach s1"); err != nil || !strings.Contains(body, "attached s1") {
		t.Fatalf("attach: %q %v", body, err)
	}
	if body, err := c.Send("status"); err != nil || !strings.Contains(body, "events=") {
		t.Fatalf("status: %q %v", body, err)
	}
	if body, err := c.Send("step 10"); err != nil || !strings.Contains(body, "stopped:") {
		t.Fatalf("step: %q %v", body, err)
	}

	// Re-attach to a different session replaces the binding (and detaches
	// the old handle).
	if _, err := c.Send("attach s2"); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	attaches, detaches := r.attaches, r.detaches
	r.mu.Unlock()
	if attaches != 2 || detaches != 1 {
		t.Fatalf("attaches/detaches = %d/%d, want 2/1", attaches, detaches)
	}

	// Unknown session: structured error, connection intact.
	if _, err := c.Send("attach nope"); err == nil || !strings.Contains(err.Error(), "no session") {
		t.Fatalf("attach nope: %v", err)
	}
	if _, err := c.Send("status"); err != nil {
		t.Fatalf("connection broken by failed attach: %v", err)
	}
}

func TestResolverModeDetachOnDisconnect(t *testing.T) {
	r := &fakeResolver{sessions: map[string]*debugger.Debugger{"s1": bankDebugger(t, 3)}}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go (&Server{Resolver: r}).Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send("attach s1"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The server detaches the handle when the connection goes away.
	deadline := 200
	for i := 0; ; i++ {
		r.mu.Lock()
		d := r.detaches
		r.mu.Unlock()
		if d == 1 {
			break
		}
		if i >= deadline {
			t.Fatalf("detaches = %d after disconnect, want 1", d)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
