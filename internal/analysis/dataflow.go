package analysis

// The generic worklist solver. Analyses supply a transfer function over a
// basic block and a meet that joins a flowed-in state into a block's
// accumulated in-state; the solver iterates to a fixpoint over the CFG in
// (reverse) postorder. transfer must not mutate its input; meet mutates
// its accumulator and reports change; clone deep-copies a state so block
// in-states never alias.

// Flow direction for Solve.
const (
	Forward = iota
	Backward
)

// Solve runs a dataflow analysis over g and returns the fixpoint in-state
// of every reachable block: the state at block entry for Forward, the
// state at block exit for Backward.
//
// Forward seeds the entry block with entry; Backward seeds every block
// with entry (the lattice bottom — e.g. the empty live set), which is the
// classic initialization and keeps loops without exit blocks sound.
//
// The solver visits blocks in reverse postorder (Forward) or postorder
// (Backward) and bounds total iterations defensively, so a malformed
// (non-finite) lattice cannot loop forever.
func Solve[S any](g *CFG, dir int, entry S, clone func(S) S, transfer func(b *Block, in S) S, meet func(acc S, in S) (S, bool)) []S {
	n := len(g.Blocks)
	in := make([]S, n)
	have := make([]bool, n)

	order := g.rpo
	if dir == Backward {
		order = make([]int, n)
		for i, b := range g.rpo {
			order[n-1-i] = b
		}
	}
	edges := func(b int) []int {
		if dir == Forward {
			return g.Blocks[b].Succs
		}
		return g.Blocks[b].Preds
	}

	inWork := make([]bool, n)
	var work []int
	for _, b := range order {
		if !g.reachable[b] {
			continue
		}
		if dir == Backward || b == 0 {
			in[b] = clone(entry)
			have[b] = true
		}
		work = append(work, b)
		inWork[b] = true
	}

	// Defensive bound: a correct finite lattice converges far earlier.
	budget := 64*n + 4096
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		inWork[b] = false
		if !have[b] {
			continue
		}
		out := transfer(&g.Blocks[b], in[b])
		for _, s := range edges(b) {
			if !g.reachable[s] {
				continue
			}
			var changed bool
			if !have[s] {
				in[s], changed = clone(out), true
				have[s] = true
			} else {
				in[s], changed = meet(in[s], out)
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	return in
}
