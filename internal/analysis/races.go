package analysis

// The static Eraser-style lockset race detector. Per Ronsse & De
// Bosschere, replay of a racy program is only sound up to the first
// unsynchronized access; this analysis surfaces candidate first races
// before recording starts.
//
// For every heap access whose target has a stable cross-thread name
// (statics, fields/elements reached from statics or once-allocated
// objects), the analysis records the set of global locks held. Accesses
// are then grouped by location across all thread contexts — the entry
// thread plus one context per Spawn target, with a multiplicity flag when
// a target can be spawned more than once. A location is reported when it
// is reachable from two contexts (or one replicated context), someone
// writes it, and the intersection of the held locksets is empty.
//
// Initialization writes the entry thread performs before any Spawn can
// have executed are excluded: they are ordered before every other thread
// exists (Eraser's virgin/exclusive states model the same idiom).

import (
	"sort"
	"strings"

	"dejavu/internal/bytecode"
)

// callGraph returns, per method, the sorted set of methods it can invoke:
// Call targets, CallV candidates, and pollevents callback handlers.
func (mo *model) callGraph() [][]int {
	n := len(mo.prog.Methods)
	edges := make([]map[int]bool, n)
	for i := range edges {
		edges[i] = map[int]bool{}
	}
	for id, m := range mo.prog.Methods {
		for _, in := range m.Code {
			switch in.Op {
			case bytecode.Call:
				edges[id][int(in.A)] = true
			case bytecode.CallV:
				for _, c := range mo.callvCands[in.A] {
					edges[id][c] = true
				}
			}
		}
	}
	for _, s := range mo.nativeSites() {
		if h := mo.resolveHandler(s); h >= 0 {
			edges[s.mid][h] = true
		}
	}
	out := make([][]int, n)
	for i, set := range edges {
		for c := range set {
			out[i] = append(out[i], c)
		}
		sort.Ints(out[i])
	}
	return out
}

// resolveHandler returns the method ID of a pollevents callback handler,
// or -1 when the site is not a resolvable registration.
func (mo *model) resolveHandler(s nativeSite) int {
	if s.name != "pollevents" || len(s.args) < 1 || s.args[0].kind != symStr {
		return -1
	}
	if m, ok := mo.prog.MethodByName(mo.prog.Strings[s.args[0].a]); ok {
		return m.ID
	}
	return -1
}

// reachFrom returns the methods reachable from root over graph, root
// included.
func reachFrom(graph [][]int, root int) map[int]bool {
	seen := map[int]bool{root: true}
	work := []int{root}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		for _, c := range graph[m] {
			if !seen[c] {
				seen[c] = true
				work = append(work, c)
			}
		}
	}
	return seen
}

// threadCtx is one static thread context: the body every runtime thread
// spawned at a given site executes. multi marks contexts that can have
// more than one runtime instance.
type threadCtx struct {
	name    string
	root    int
	multi   bool
	methods map[int]bool
}

// contexts computes the entry context plus one per distinct Spawn target.
func (mo *model) contexts(graph [][]int) []threadCtx {
	p := mo.prog
	type spawnInfo struct {
		sites int
		multi bool
	}
	spawns := map[int]*spawnInfo{}
	for id, m := range p.Methods {
		inCycle := mo.cfgs[id].InCycle()
		for pc, in := range m.Code {
			if in.Op != bytecode.Spawn {
				continue
			}
			tgt := int(in.A)
			si := spawns[tgt]
			if si == nil {
				si = &spawnInfo{}
				spawns[tgt] = si
			}
			si.sites++
			// A spawn site inside a loop, or outside the entry method
			// (i.e. possibly itself executed by several threads), can run
			// more than once.
			if inCycle[mo.cfgs[id].BlockOf[pc]] || id != p.Entry {
				si.multi = true
			}
		}
	}
	ctxs := []threadCtx{{name: "main", root: p.Entry, methods: reachFrom(graph, p.Entry)}}
	var tgts []int
	for t := range spawns {
		tgts = append(tgts, t)
	}
	sort.Ints(tgts)
	for _, t := range tgts {
		si := spawns[t]
		ctxs = append(ctxs, threadCtx{
			name:    "spawn:" + p.Methods[t].FullName(),
			root:    t,
			multi:   si.multi || si.sites > 1,
			methods: reachFrom(graph, t),
		})
	}
	return ctxs
}

// canSpawn returns, per method, whether it can transitively reach a Spawn.
func (mo *model) canSpawn(graph [][]int) []bool {
	n := len(mo.prog.Methods)
	direct := make([]bool, n)
	for id, m := range mo.prog.Methods {
		for _, in := range m.Code {
			if in.Op == bytecode.Spawn {
				direct[id] = true
			}
		}
	}
	can := make([]bool, n)
	for id := range can {
		for r := range reachFrom(graph, id) {
			if direct[r] {
				can[id] = true
			}
		}
	}
	return can
}

// raceAccess is one heap access to a globally nameable location.
type raceAccess struct {
	mid, pc  int
	write    bool
	lockset  []string // sorted global-lock keys held
	preSpawn bool     // in the entry method, before any Spawn can have run
}

// rootSym follows a symbol's base chain to its provenance root (the
// static or allocation site a field/element path hangs off).
func rootSym(s *SymVal) *SymVal {
	for s.base != nil {
		s = s.base
	}
	return s
}

// collectAccesses walks every method and gathers accesses per method,
// keyed by canonical location. The second map records, per location key,
// the static slot (class ID, static slot) rooting it, when there is one.
func (mo *model) collectAccesses(graph [][]int) (map[string]map[int][]raceAccess, map[string][2]int32) {
	p := mo.prog
	spawny := mo.canSpawn(graph)

	// Forward may-spawn dataflow over the entry method: has a Spawn (or a
	// call that can spawn) possibly executed by block entry?
	entryID := p.Entry
	g := mo.cfgs[entryID]
	blockSpawns := func(b *Block) bool {
		for pc := b.Start; pc < b.End; pc++ {
			in := p.Methods[entryID].Code[pc]
			switch in.Op {
			case bytecode.Spawn:
				return true
			case bytecode.Call:
				if spawny[in.A] {
					return true
				}
			case bytecode.CallV:
				for _, c := range mo.callvCands[in.A] {
					if spawny[c] {
						return true
					}
				}
			}
		}
		return false
	}
	maySpawnIn := Solve(g, Forward, false,
		func(b bool) bool { return b },
		func(b *Block, in bool) bool { return in || blockSpawns(b) },
		func(acc, in bool) (bool, bool) { return acc || in, in && !acc })

	// preSpawnAt reports whether an entry-method pc is provably executed
	// before any Spawn: no spawn flowed into its block, and none of the
	// instructions earlier in the block spawns either.
	preSpawnAt := func(pc int) bool {
		b := &g.Blocks[g.BlockOf[pc]]
		if maySpawnIn[b.Index] {
			return false
		}
		return !blockSpawns(&Block{Start: b.Start, End: pc})
	}

	accs := map[string]map[int][]raceAccess{}
	roots := map[string][2]int32{}
	for id := range p.Methods {
		mid := id
		isEntry := mid == entryID
		mo.walkMethod(mid, symEvents{
			onAccess: func(pc int, in bytecode.Instr, target *SymVal, write bool, locks []*SymVal) {
				if !mo.locGlobal(target) {
					return
				}
				key := target.key(p)
				if root := rootSym(target); root.kind == symStatic {
					roots[key] = [2]int32{root.a, root.b}
				}
				var held []string
				for _, l := range locks {
					held = append(held, l.key(p))
				}
				sort.Strings(held)
				if accs[key] == nil {
					accs[key] = map[int][]raceAccess{}
				}
				accs[key][mid] = append(accs[key][mid], raceAccess{
					mid: mid, pc: pc, write: write, lockset: held,
					preSpawn: isEntry && preSpawnAt(pc),
				})
			},
		})
	}
	return accs, roots
}

// racyLoc is one location the races analysis decides is racy: its
// canonical key, the first access (finding anchor), and the evidence.
type racyLoc struct {
	key      string
	first    *raceAccess
	ctxNames []string
	writes   int
	reads    int
}

// racyLocations runs the race decision over every globally nameable
// location and returns the racy ones in key order, plus the static-root
// map from collectAccesses. This is the shared core of analyzeRaces and
// RacyStatics.
func (mo *model) racyLocations() ([]racyLoc, map[string][2]int32) {
	graph := mo.callGraph()
	ctxs := mo.contexts(graph)
	byLoc, roots := mo.collectAccesses(graph)

	var keys []string
	for k := range byLoc {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []racyLoc
	for _, key := range keys {
		perMethod := byLoc[key]
		var (
			ctxNames []string
			multi    bool
			writes   int
			reads    int
			common   map[string]bool
			haveAny  bool
			first    *raceAccess
		)
		for _, c := range ctxs {
			used := false
			var mids []int
			for mid := range perMethod {
				if c.methods[mid] {
					mids = append(mids, mid)
				}
			}
			sort.Ints(mids)
			for _, mid := range mids {
				for i := range perMethod[mid] {
					a := &perMethod[mid][i]
					if c.name == "main" && a.preSpawn {
						continue // ordered before every other thread exists
					}
					used = true
					if a.write {
						writes++
						if first == nil || !first.write {
							first = a
						}
					} else {
						reads++
						if first == nil {
							first = a
						}
					}
					if !haveAny {
						haveAny = true
						common = map[string]bool{}
						for _, l := range a.lockset {
							common[l] = true
						}
					} else {
						next := map[string]bool{}
						for _, l := range a.lockset {
							if common[l] {
								next[l] = true
							}
						}
						common = next
					}
				}
			}
			if used {
				ctxNames = append(ctxNames, c.name)
				if c.multi {
					multi = true
				}
			}
		}
		shared := len(ctxNames) >= 2 || (len(ctxNames) == 1 && multi)
		if !shared || writes == 0 || len(common) > 0 || first == nil {
			continue
		}
		out = append(out, racyLoc{key: key, first: first, ctxNames: ctxNames, writes: writes, reads: reads})
	}
	return out, roots
}

func analyzeRaces(mo *model, r *Report) {
	p := mo.prog
	locs, _ := mo.racyLocations()
	for _, l := range locs {
		m := p.Methods[l.first.mid]
		r.add(ARaces, m, l.first.pc,
			"possible data race on %s: accessed by %s with no common lock (%d writes, %d reads)",
			displayKey(l.key), strings.Join(l.ctxNames, ", "), l.writes, l.reads)
	}
}

// RacyStatics reports the static slots (class ID, static slot) rooting
// any location the races analysis flags in p. The replay-equivalence
// certifier treats accesses to these slots as observable events: a racy
// access is ordered only by the recorded schedule, so an optimizer that
// adds, drops, or reorders one perturbs replay. The program must verify;
// a program that does not yields an empty set (the certifier refuses such
// programs on its own verify step before consulting this).
func RacyStatics(p *bytecode.Program, natives bytecode.NativeSig) map[[2]int32]bool {
	out := map[[2]int32]bool{}
	if err := p.Validate(); err != nil {
		return out
	}
	facts, err := bytecode.Verify(p, bytecode.VerifyConfig{Natives: natives})
	if err != nil {
		return out
	}
	mo := buildModel(p, Config{Natives: natives}, facts)
	locs, roots := mo.racyLocations()
	for _, l := range locs {
		if slot, ok := roots[l.key]; ok {
			out[slot] = true
		}
	}
	return out
}

// displayKey prettifies a canonical location key for humans.
func displayKey(key string) string {
	key = strings.TrimPrefix(key, "static:")
	key = strings.ReplaceAll(key, "static:", "")
	if rest, ok := strings.CutPrefix(key, "new:"); ok {
		key = "object allocated at " + rest
	}
	return key
}
