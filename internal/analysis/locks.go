package analysis

// The monitor-balance analysis. Replay correctness assumes structured
// locking: every path through a method holds a balanced monitor stack, and
// Wait/TimedWait/Notify/NotifyAll run with the receiver's monitor held
// (the runtime traps the latter, but only when the offending path
// executes; the analysis proves it for every path).
//
// Two finding sources:
//
//  1. The symbolic walk itself (symEvents.onLock): monitorexit with no or
//     the wrong monitor held, out-of-LIFO releases, wait/notify without
//     the receiver's monitor, and returns with monitors still held.
//
//  2. A post-fixpoint edge audit: if two paths reach the same program
//     point with different monitor-stack depths, some path acquired or
//     released a lock the other did not — the classic
//     "released-on-one-branch-only" and "acquired-in-a-loop" shapes.

import "dejavu/internal/bytecode"

func analyzeLocks(mo *model, r *Report) {
	for id, m := range mo.prog.Methods {
		method := m
		mo.walkMethod(id, symEvents{onLock: func(pc int, format string, args ...any) {
			r.add(ALocks, method, pc, format, args...)
		}})
		// Returns with monitors held: re-walk looking at Ret/RetV sites.
		mo.walkRetHeld(id, r)
		mo.auditLockDepths(id, r)
	}
}

// walkRetHeld reports Ret/RetV executed while the abstract monitor stack
// is non-empty. Halt is exempt: it tears down the whole VM.
func (mo *model) walkRetHeld(id int, r *Report) {
	m := mo.prog.Methods[id]
	g := mo.cfgs[id]
	states := mo.inStates[id]
	for _, bi := range g.RPO() {
		if states[bi] == nil {
			continue
		}
		st := states[bi].clone()
		for pc := g.Blocks[bi].Start; pc < g.Blocks[bi].End; pc++ {
			op := m.Code[pc].Op
			if (op == bytecode.Ret || op == bytecode.RetV) && len(st.locks) > 0 {
				r.add(ALocks, m, pc, "returns with %d monitor(s) still held (%s)",
					len(st.locks), lockNames(st.locks, mo.prog))
			}
			mo.exec(id, pc, st, symEvents{})
		}
	}
}

// auditLockDepths compares, for every reachable block, the monitor-stack
// depths its predecessors leave behind. A mismatch means a monitor is
// acquired or released on only some of the converging paths.
func (mo *model) auditLockDepths(id int, r *Report) {
	m := mo.prog.Methods[id]
	g := mo.cfgs[id]
	states := mo.inStates[id]

	outDepth := make([]int, len(g.Blocks))
	haveOut := make([]bool, len(g.Blocks))
	for _, bi := range g.RPO() {
		if states[bi] == nil {
			continue
		}
		st := states[bi].clone()
		for pc := g.Blocks[bi].Start; pc < g.Blocks[bi].End; pc++ {
			mo.exec(id, pc, st, symEvents{})
		}
		outDepth[bi] = len(st.locks)
		haveOut[bi] = true
	}

	for _, bi := range g.RPO() {
		min, max := -1, -1
		note := func(d int) {
			if min == -1 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if bi == 0 {
			note(0) // method entry reaches block 0 with no monitors held
		}
		for _, p := range g.Blocks[bi].Preds {
			if g.Reachable(p) && haveOut[p] {
				note(outDepth[p])
			}
		}
		if min != -1 && min != max {
			r.add(ALocks, m, g.Blocks[bi].Start,
				"unbalanced monitor stack: paths join here holding between %d and %d monitors (a lock is acquired or released on only some paths)",
				min, max)
		}
	}
}
