// Package analysis is the static-analysis counterpart of the DejaVu
// engine: a CFG + dataflow framework over bytecode.Program, with analyses
// that prove — before a single trace is recorded — the invariants replay
// correctness rests on. Where the runtime discovers a violated invariant
// only when replay diverges, `dejavu vet` reports it up front with a
// method/pc/source-line location.
//
// The five analyses (see Analyze):
//
//   - locks:    monitor balance and wait/notify-under-monitor, by abstract
//     interpretation of MonEnter/MonExit over every path
//   - races:    a static Eraser-style lockset race detector across all
//     Spawn-reachable threads
//   - yield:    the logical-clock yield-point audit (every cycle carries a
//     yield point; callback closures never block)
//   - coverage: the symmetric-instrumentation audit (every
//     non-deterministic native is captured by record instrumentation)
//   - deadcode: unreachable code and dead stores
package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dejavu/internal/bytecode"
)

// Analysis names, used in Finding.Analysis and Config.Analyses.
const (
	AVerify   = "verify" // verifier rejection surfaced as a finding
	ALocks    = "locks"
	ARaces    = "races"
	AYield    = "yield"
	ACoverage = "coverage"
	ADeadcode = "deadcode"
	// AEquiv marks replay-equivalence certifier findings (package
	// analysis/equiv); it is not part of AllAnalyses because `dejavu vet`
	// runs it only in its two-program -equiv mode.
	AEquiv = "equiv"
)

// AllAnalyses lists the five vet analyses in report order.
var AllAnalyses = []string{ALocks, ARaces, AYield, ACoverage, ADeadcode}

// Finding is one located diagnostic.
type Finding struct {
	Analysis string `json:"analysis"`
	Method   string `json:"method"` // full name, e.g. "Main.t1"
	PC       int    `json:"pc"`
	Line     int    `json:"line"` // source line from the method line table, 0 if absent
	Message  string `json:"message"`
}

func (f Finding) String() string {
	loc := fmt.Sprintf("%s pc=%d", f.Method, f.PC)
	if f.Line > 0 {
		loc += fmt.Sprintf(" line=%d", f.Line)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Analysis, loc, f.Message)
}

// Report is the result of analyzing one program.
type Report struct {
	Program  string    `json:"program"`
	Findings []Finding `json:"findings"`
}

// add appends a finding, resolving the source line from m's line table.
func (r *Report) add(analysis string, m *bytecode.Method, pc int, format string, args ...any) {
	f := Finding{Analysis: analysis, PC: pc, Message: fmt.Sprintf(format, args...)}
	if m != nil {
		f.Method = m.FullName()
		if pc >= 0 && pc < len(m.Lines) {
			f.Line = int(m.Lines[pc])
		}
	}
	r.Findings = append(r.Findings, f)
}

// sortFindings orders findings deterministically: by analysis (report
// order), then method, pc, message.
func (r *Report) sortFindings() {
	rank := map[string]int{AVerify: -1}
	for i, a := range AllAnalyses {
		rank[a] = i
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if rank[a.Analysis] != rank[b.Analysis] {
			return rank[a.Analysis] < rank[b.Analysis]
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Message < b.Message
	})
}

// Clean reports whether no findings were produced.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Text renders the report for humans, one finding per line.
func (r *Report) Text() string {
	var sb strings.Builder
	if r.Clean() {
		fmt.Fprintf(&sb, "%s: clean\n", r.Program)
		return sb.String()
	}
	fmt.Fprintf(&sb, "%s: %d findings\n", r.Program, len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&sb, "  %s\n", f)
	}
	return sb.String()
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() string {
	// Findings is never nil so the JSON shape is stable.
	if r.Findings == nil {
		r.Findings = []Finding{}
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Sprintf(`{"program":%q,"error":%q}`, r.Program, err.Error())
	}
	return string(b)
}
