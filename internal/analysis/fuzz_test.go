package analysis_test

// FuzzAnalyze hardens the vet entry point: whatever program image the
// codec accepts, Analyze must terminate without panicking (the dataflow
// solver is budgeted) and produce the same report twice — vet runs in CI,
// where a crash or flaky finding on a weird-but-valid program is a build
// breaker, not a bug report.

import (
	"reflect"
	"testing"

	"dejavu/internal/analysis"
	"dejavu/internal/bytecode"
	"dejavu/internal/workloads"
)

func FuzzAnalyze(f *testing.F) {
	for _, name := range workloads.Names() {
		f.Add(bytecode.EncodeImage(workloads.Registry[name]()))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := bytecode.DecodeImage(data)
		if err != nil {
			return
		}
		// Analyze owns validation/verification: malformed programs come
		// back as a single "verify" finding, never a panic.
		a := analysis.Analyze(prog, vetCfg())
		b := analysis.Analyze(prog, vetCfg())
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("findings not deterministic:\n%s\nvs\n%s", a.Text(), b.Text())
		}
	})
}
