package analysis

import (
	"dejavu/internal/bytecode"
)

// Block is a basic block: the half-open pc range [Start, End).
type Block struct {
	Index      int
	Start, End int
	Succs      []int // successor block indices, deterministic order
	Preds      []int
}

// CFG is the control-flow graph of one method.
type CFG struct {
	Method  *bytecode.Method
	Blocks  []Block
	BlockOf []int // pc -> block index

	idom      []int  // immediate dominator per block, -1 for entry/unreachable
	reachable []bool // per block, from the entry block
	rpo       []int  // reverse postorder over reachable blocks
}

// isTerminal reports whether op never falls through to pc+1.
func isTerminal(op bytecode.Opcode) bool {
	switch op {
	case bytecode.Jmp, bytecode.Ret, bytecode.RetV, bytecode.Halt:
		return true
	}
	return false
}

// isBranch reports whether op carries a jump target in A.
func isBranch(op bytecode.Opcode) bool {
	ka, _ := op.Operands()
	return ka == bytecode.OpTarget
}

// BuildCFG partitions m's code into basic blocks and wires the edges.
// The method must be structurally valid (Program.Validate).
func BuildCFG(m *bytecode.Method) *CFG {
	n := len(m.Code)
	leader := make([]bool, n)
	leader[0] = true
	for pc, in := range m.Code {
		if isBranch(in.Op) {
			leader[in.A] = true
			if pc+1 < n {
				leader[pc+1] = true
			}
		} else if isTerminal(in.Op) && pc+1 < n {
			leader[pc+1] = true
		}
	}
	g := &CFG{Method: m, BlockOf: make([]int, n)}
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, Block{Index: len(g.Blocks), Start: pc})
		}
		g.BlockOf[pc] = len(g.Blocks) - 1
	}
	for i := range g.Blocks {
		if i+1 < len(g.Blocks) {
			g.Blocks[i].End = g.Blocks[i+1].Start
		} else {
			g.Blocks[i].End = n
		}
	}
	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for i := range g.Blocks {
		last := m.Code[g.Blocks[i].End-1]
		switch {
		case last.Op == bytecode.Jmp:
			addEdge(i, g.BlockOf[last.A])
		case isBranch(last.Op): // Jz/Jnz: fallthrough first, then taken
			if g.Blocks[i].End < n {
				addEdge(i, g.BlockOf[g.Blocks[i].End])
			}
			addEdge(i, g.BlockOf[last.A])
		case isTerminal(last.Op): // Ret/RetV/Halt: no successors
		default:
			if g.Blocks[i].End < n {
				addEdge(i, g.BlockOf[g.Blocks[i].End])
			}
		}
	}
	g.computeOrder()
	g.computeDominators()
	return g
}

// computeOrder fills reachable and the reverse postorder (entry first).
func (g *CFG) computeOrder() {
	g.reachable = make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	visited := make([]bool, len(g.Blocks))
	dfs = func(b int) {
		visited[b] = true
		g.reachable[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	g.rpo = make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		g.rpo = append(g.rpo, post[i])
	}
}

// computeDominators runs the Cooper–Harvey–Kennedy iterative algorithm
// over the reverse postorder.
func (g *CFG) computeDominators() {
	n := len(g.Blocks)
	g.idom = make([]int, n)
	for i := range g.idom {
		g.idom[i] = -1
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range g.rpo {
		rpoNum[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = g.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = g.idom[b]
			}
		}
		return a
	}
	g.idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range g.rpo[1:] {
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if !g.reachable[p] || g.idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && g.idom[b] != newIdom {
				g.idom[b] = newIdom
				changed = true
			}
		}
	}
	g.idom[0] = -1 // entry has no immediate dominator
}

// Reachable reports whether block b is reachable from the entry.
func (g *CFG) Reachable(b int) bool { return g.reachable[b] }

// Idom returns the immediate dominator of b (-1 for the entry block or an
// unreachable block).
func (g *CFG) Idom(b int) int { return g.idom[b] }

// Dominates reports whether block a dominates block b (reflexive).
func (g *CFG) Dominates(a, b int) bool {
	if !g.reachable[a] || !g.reachable[b] {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == 0 {
			return false
		}
		b = g.idom[b]
		if b == -1 {
			return false
		}
	}
}

// Backedges returns the CFG edges (from, to) where the target dominates
// the source — the loop backedges, in deterministic order.
func (g *CFG) Backedges() [][2]int {
	var out [][2]int
	for _, b := range g.rpo {
		for _, s := range g.Blocks[b].Succs {
			if g.Dominates(s, b) {
				out = append(out, [2]int{b, s})
			}
		}
	}
	return out
}

// RPO returns the reverse postorder over reachable blocks.
func (g *CFG) RPO() []int { return g.rpo }

// SCCs returns the strongly connected components of the reachable blocks
// (Tarjan), in deterministic order. Components are returned even when
// trivial; use len(c) > 1 or a self-loop test for cycles.
func (g *CFG) SCCs() [][]int {
	n := len(g.Blocks)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0
	var strong func(int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Blocks[v].Succs {
			if index[w] == -1 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, b := range g.rpo {
		if index[b] == -1 {
			strong(b)
		}
	}
	return comps
}

// HasSelfLoop reports whether block b has an edge to itself.
func (g *CFG) HasSelfLoop(b int) bool {
	for _, s := range g.Blocks[b].Succs {
		if s == b {
			return true
		}
	}
	return false
}

// InCycle reports, per block, whether it belongs to some CFG cycle.
func (g *CFG) InCycle() []bool {
	in := make([]bool, len(g.Blocks))
	for _, comp := range g.SCCs() {
		if len(comp) > 1 || g.HasSelfLoop(comp[0]) {
			for _, b := range comp {
				in[b] = true
			}
		}
	}
	return in
}
