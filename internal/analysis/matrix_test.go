package analysis_test

import (
	"reflect"
	"testing"

	"dejavu/internal/analysis"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

func vetCfg() analysis.Config {
	return analysis.Config{Natives: vm.NativeSignature, NativeCoverage: vm.NativeCoverage}
}

// TestWorkloadMatrix pins the analysis verdict for every built-in
// workload: the intentionally racy paper demos (fig1ab, fig1cd) carry
// only race findings, the deliberately naive optimizer showcase (expr)
// carries only dead-code findings, and everything else is clean. The
// expectations mirror .github/vet-allowlist.txt, which CI enforces in
// both directions with -strict-allow.
func TestWorkloadMatrix(t *testing.T) {
	intentional := map[string]string{
		"fig1ab": analysis.ARaces,
		"fig1cd": analysis.ARaces,
		"expr":   analysis.ADeadcode,
	}
	for _, name := range workloads.Names() {
		r := analysis.Analyze(workloads.Registry[name](), vetCfg())
		if want, ok := intentional[name]; ok {
			if r.Clean() {
				t.Errorf("%s: intentionally dirty workload reported clean", name)
				continue
			}
			for _, f := range r.Findings {
				if f.Analysis != want {
					t.Errorf("%s: want only %s findings, got %s", name, want, f)
				}
			}
			continue
		}
		if !r.Clean() {
			t.Errorf("%s: want clean, got:\n%s", name, r.Text())
		}
	}
}

// TestAnalyzeDeterministic runs every analysis twice over every workload
// and requires byte-identical reports: vet output must be stable so CI
// diffs and allowlists mean something.
func TestAnalyzeDeterministic(t *testing.T) {
	for _, name := range workloads.Names() {
		prog := workloads.Registry[name]()
		a := analysis.Analyze(prog, vetCfg())
		b := analysis.Analyze(prog, vetCfg())
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs disagree:\n%s\nvs\n%s", name, a.Text(), b.Text())
		}
		if a.JSON() != b.JSON() {
			t.Errorf("%s: JSON output differs between runs", name)
		}
	}
}

// TestAnalysisSubset checks Config.Analyses filtering: asking for one
// analysis must not leak findings from another.
func TestAnalysisSubset(t *testing.T) {
	prog := workloads.Fig1AB()
	cfg := vetCfg()
	cfg.Analyses = []string{analysis.ADeadcode}
	r := analysis.Analyze(prog, cfg)
	for _, f := range r.Findings {
		if f.Analysis != analysis.ADeadcode {
			t.Errorf("subset run leaked finding %s", f)
		}
	}
	// The full run on fig1ab has race findings; the deadcode-only run
	// must not.
	full := analysis.Analyze(prog, vetCfg())
	if full.Clean() {
		t.Fatal("fig1ab full analysis should have findings")
	}
}
