package analysis_test

import (
	"testing"

	"dejavu/internal/analysis"
	"dejavu/internal/bytecode"
)

// A diamond followed by a self-loop:
//
//	B0: load 0; jz else
//	B1: iconst 1; store 1; jmp join
//	B2: else: iconst 2; store 1
//	B3: join: load 1; jnz join   (self-loop)
//	B4: ret
func diamondLoopMethod(t *testing.T) *bytecode.Method {
	t.Helper()
	prog, err := bytecode.Assemble(`
program cfgfix
class Main {
  method m 1 2 {
    load 0
    jz else
    iconst 1
    store 1
    jmp join
  else:
    iconst 2
    store 1
  join:
    load 1
    jnz join
    ret
  }
  method main 0 0 { halt }
}
entry Main.main
`)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := prog.MethodByName("Main.m")
	if !ok {
		t.Fatal("Main.m not found")
	}
	return m
}

func TestCFGStructure(t *testing.T) {
	g := analysis.BuildCFG(diamondLoopMethod(t))
	if len(g.Blocks) != 5 {
		for _, b := range g.Blocks {
			t.Logf("block %d: [%d,%d) succs=%v preds=%v", b.Index, b.Start, b.End, b.Succs, b.Preds)
		}
		t.Fatalf("want 5 blocks, got %d", len(g.Blocks))
	}
	wantSuccs := [][]int{{1, 2}, {3}, {3}, {4, 3}, nil}
	for i, want := range wantSuccs {
		got := g.Blocks[i].Succs
		if len(got) != len(want) {
			t.Fatalf("block %d succs: got %v want %v", i, got, want)
		}
		seen := map[int]bool{}
		for _, s := range got {
			seen[s] = true
		}
		for _, s := range want {
			if !seen[s] {
				t.Errorf("block %d missing successor %d (got %v)", i, s, got)
			}
		}
	}
	for i := range g.Blocks {
		if !g.Reachable(i) {
			t.Errorf("block %d should be reachable", i)
		}
	}
}

func TestCFGDominators(t *testing.T) {
	g := analysis.BuildCFG(diamondLoopMethod(t))
	wantIdom := []int{-1, 0, 0, 0, 3}
	for i, want := range wantIdom {
		if got := g.Idom(i); got != want {
			t.Errorf("idom(%d) = %d, want %d", i, got, want)
		}
	}
	if !g.Dominates(0, 4) {
		t.Error("entry should dominate the exit block")
	}
	if g.Dominates(1, 3) {
		t.Error("one diamond arm must not dominate the join")
	}
}

func TestCFGBackedgesAndCycles(t *testing.T) {
	g := analysis.BuildCFG(diamondLoopMethod(t))
	be := g.Backedges()
	if len(be) != 1 || be[0][0] != 3 || be[0][1] != 3 {
		t.Fatalf("want single backedge 3->3, got %v", be)
	}
	if !g.HasSelfLoop(3) {
		t.Error("join block has a self-loop")
	}
	in := g.InCycle()
	if !in[3] {
		t.Error("join block is in a cycle")
	}
	if in[0] || in[4] {
		t.Error("entry and exit are not in cycles")
	}
}
