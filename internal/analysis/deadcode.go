package analysis

// Unreachable-code and dead-store detection. Neither breaks replay by
// itself — the verifier tolerates both — but dead code is where stale
// instrumentation assumptions hide, and a dead store in trace-generation
// workloads usually means the workload does not exercise what it claims
// to. Unreachable regions are found from the CFG; dead stores by a
// classic backward liveness analysis over the local slots.

import "dejavu/internal/bytecode"

// liveSet is the backward-liveness lattice: live[i] = local slot i may be
// read before its next write.
type liveSet []bool

func (l liveSet) clone() liveSet { return append(liveSet(nil), l...) }

// applyLiveness updates l backward across one instruction.
func applyLiveness(l liveSet, in bytecode.Instr) {
	switch in.Op {
	case bytecode.Load:
		if int(in.A) < len(l) {
			l[in.A] = true
		}
	case bytecode.Store:
		if int(in.A) < len(l) {
			l[in.A] = false
		}
	}
}

func analyzeDeadcode(mo *model, r *Report) {
	for id, m := range mo.prog.Methods {
		g := mo.cfgs[id]

		// Unreachable regions, merged across consecutive blocks.
		for bi := 0; bi < len(g.Blocks); {
			if g.Reachable(bi) {
				bi++
				continue
			}
			lo := g.Blocks[bi].Start
			for bi < len(g.Blocks) && !g.Reachable(bi) {
				bi++
			}
			hi := g.Blocks[bi-1].End
			r.add(ADeadcode, m, lo, "unreachable code (pc %d..%d)", lo, hi-1)
		}

		// Dead stores via backward liveness. Solve returns, per block, the
		// fixpoint state at block exit; replay each block backward from it.
		exit := Solve(g, Backward, make(liveSet, m.NLocals),
			liveSet.clone,
			func(b *Block, out liveSet) liveSet {
				l := out.clone()
				for pc := b.End - 1; pc >= b.Start; pc-- {
					applyLiveness(l, m.Code[pc])
				}
				return l
			},
			func(acc, in liveSet) (liveSet, bool) {
				changed := false
				for i := range acc {
					if in[i] && !acc[i] {
						acc[i] = true
						changed = true
					}
				}
				return acc, changed
			})
		for _, bi := range g.RPO() {
			l := exit[bi].clone()
			type ds struct {
				pc   int
				slot int32
			}
			var dead []ds
			for pc := g.Blocks[bi].End - 1; pc >= g.Blocks[bi].Start; pc-- {
				in := m.Code[pc]
				if in.Op == bytecode.Store && int(in.A) < len(l) && !l[in.A] {
					dead = append(dead, ds{pc, in.A})
				}
				applyLiveness(l, in)
			}
			for i := len(dead) - 1; i >= 0; i-- {
				r.add(ADeadcode, m, dead[i].pc,
					"dead store: local %d is overwritten or never read afterwards", dead[i].slot)
			}
		}
	}
}
