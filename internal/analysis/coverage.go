package analysis

// The non-determinism coverage audit — the static side of the paper's
// symmetric-instrumentation pillar. Every source of non-determinism a
// program can touch must be captured by record instrumentation, or replay
// silently diverges. The bytecode-level sources (Sleep, TimedWait, input
// natives) are covered by construction: the engine intercepts the opcodes
// themselves. Natives are the open end: a name the record instrumentation
// does not cover executes against live host state during replay.
//
// The audit classifies every Native site with the VM's coverage registry:
//
//   - recorded:       result captured in the trace, regenerated on replay
//   - deterministic:  pure function of replayed VM state, safe to re-run
//   - remote:         remote-reflection channel that bypasses the engine —
//     legitimate in tool VMs, but unrecordable, so flagged
//   - unknown:        not in the registry at all (would also trap at run
//     time, but vet reports it with a location before recording starts)

func analyzeCoverage(mo *model, r *Report) {
	if mo.cfg.NativeCoverage == nil {
		return
	}
	for _, s := range mo.nativeSites() {
		m := mo.prog.Methods[s.mid]
		kind, ok := mo.cfg.NativeCoverage(s.name)
		switch {
		case !ok:
			r.add(ACoverage, m, s.pc,
				"native %q is not in the record-instrumentation registry: its result would never be captured and replay would diverge", s.name)
		case kind == NativeRemote:
			r.add(ACoverage, m, s.pc,
				"native %q reads the remote-reflection channel, which bypasses record instrumentation: results are not captured in the trace (tool-VM only)", s.name)
		}
	}
}
