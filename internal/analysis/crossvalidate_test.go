package analysis_test

// Cross-validation of the static lockset detector against the dynamic
// replay-based one (tools.RaceDetector) over the whole workload matrix.
// The dynamic detector only sees accesses the schedule actually executes,
// so everything it flags must also be flagged statically — the static
// pass abstracts over all schedules. The reverse inclusion is checked for
// the known-racy demos: both detectors agree the races are there.

import (
	"testing"

	"dejavu/internal/analysis"
	"dejavu/internal/replaycheck"
	"dejavu/internal/tools"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

func TestStaticCoversDynamicRaces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload under several recorded schedules")
	}
	for _, name := range workloads.Names() {
		prog := workloads.Registry[name]()

		staticRacy := false
		for _, f := range analysis.Analyze(prog, vetCfg()).Findings {
			if f.Analysis == analysis.ARaces {
				staticRacy = true
			}
		}

		dynamicRaces := 0
		for _, seed := range []int64{1, 2, 3} {
			rd := tools.NewRaceDetector()
			o := replaycheck.Options{Seed: seed, PreemptMin: 2, PreemptMax: 10}
			o.TweakVM = func(c *vm.Config) { c.MemHook = rd; c.SyncHook = rd }
			rec, err := replaycheck.Record(prog, o)
			if err != nil || rec.RunErr != nil {
				t.Fatalf("%s seed %d: %v %v", name, seed, err, rec.RunErr)
			}
			dynamicRaces += len(rd.Races())
		}

		if dynamicRaces > 0 && !staticRacy {
			t.Errorf("%s: dynamic detector found %d races that the static pass missed", name, dynamicRaces)
		}
		if (name == "fig1ab" || name == "fig1cd") && (dynamicRaces == 0 || !staticRacy) {
			t.Errorf("%s: both detectors should flag the paper's racy demo (dynamic=%d static=%v)",
				name, dynamicRaces, staticRacy)
		}
	}
}
