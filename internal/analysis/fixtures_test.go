package analysis_test

// Seeded-bug fixtures: one assembled program per analysis with a known
// defect, checking that the finding carries the right analysis name and a
// real method/pc/source-line location in both text and JSON output.
// Assembled (rather than builder-made) sources matter here: the assembler
// records line-number tables, so Line must be non-zero.

import (
	"encoding/json"
	"strings"
	"testing"

	"dejavu/internal/analysis"
	"dejavu/internal/bytecode"
)

func analyzeSrc(t *testing.T, src string) *analysis.Report {
	t.Helper()
	prog, err := bytecode.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return analysis.Analyze(prog, vetCfg())
}

// requireFinding asserts one finding of the given analysis in the given
// method (any method when method is empty) whose message contains msgSub,
// with a resolved source line.
func requireFinding(t *testing.T, r *analysis.Report, analysisName, method, msgSub string) analysis.Finding {
	t.Helper()
	for _, f := range r.Findings {
		if f.Analysis == analysisName && (method == "" || f.Method == method) && strings.Contains(f.Message, msgSub) {
			if f.Line <= 0 {
				t.Errorf("finding %s: assembled fixture should resolve a source line", f)
			}
			if !strings.Contains(r.Text(), f.String()) {
				t.Errorf("text output missing finding %s", f)
			}
			return f
		}
	}
	t.Fatalf("no [%s] finding in %s containing %q; report:\n%s", analysisName, method, msgSub, r.Text())
	return analysis.Finding{}
}

// The four adversarial monitor CFG shapes: release on one branch only,
// acquire inside a loop, wait outside any monitor, nested monitors
// released out of LIFO order.
const lockFixture = `
program lockfix
class Main {
  static lock ref
  static a ref
  static b ref
  method branchrel 1 1 {
    gets Main.lock
    monenter
    load 0
    jz skip
    gets Main.lock
    monexit
  skip:
    ret
  }
  method loopacq 0 1 {
    iconst 3
    store 0
  loop:
    load 0
    jz out
    gets Main.lock
    monenter
    load 0
    iconst 1
    sub
    store 0
    jmp loop
  out:
    ret
  }
  method waiter 0 0 {
    gets Main.lock
    wait
    ret
  }
  method lifo 0 0 {
    gets Main.a
    monenter
    gets Main.b
    monenter
    gets Main.a
    monexit
    gets Main.b
    monexit
    ret
  }
  method main 0 0 {
    halt
  }
}
entry Main.main
`

func TestLockFixtures(t *testing.T) {
	r := analyzeSrc(t, lockFixture)
	requireFinding(t, r, analysis.ALocks, "Main.branchrel", "unbalanced monitor stack")
	requireFinding(t, r, analysis.ALocks, "Main.loopacq", "unbalanced monitor stack")
	requireFinding(t, r, analysis.ALocks, "Main.waiter", "with no monitor held")
	requireFinding(t, r, analysis.ALocks, "Main.lifo", "released out of LIFO order")
}

func TestLockReturnHeldFixture(t *testing.T) {
	r := analyzeSrc(t, `
program leakfix
class Main {
  static lock ref
  method leaky 0 0 {
    gets Main.lock
    monenter
    ret
  }
  method main 0 0 { halt }
}
entry Main.main
`)
	requireFinding(t, r, analysis.ALocks, "Main.leaky", "still held")
}

func TestRaceFixture(t *testing.T) {
	r := analyzeSrc(t, `
program racefix
class Main {
  static x
  method worker 0 0 {
    gets Main.x
    iconst 1
    add
    puts Main.x
    ret
  }
  method main 0 0 {
    spawn Main.worker
    pop
    spawn Main.worker
    pop
    halt
  }
}
entry Main.main
`)
	f := requireFinding(t, r, analysis.ARaces, "Main.worker", "possible data race")
	if !strings.Contains(f.Message, "Main.x") {
		t.Errorf("race finding should name the static: %s", f.Message)
	}
}

// A race guarded on one side only is still a race: the common lockset is
// empty.
func TestRaceOneSidedLockFixture(t *testing.T) {
	r := analyzeSrc(t, `
program onesided
class Main {
  static x
  static lock ref
  method locked 0 0 {
    gets Main.lock
    monenter
    iconst 1
    puts Main.x
    gets Main.lock
    monexit
    ret
  }
  method unlocked 0 0 {
    iconst 2
    puts Main.x
    ret
  }
  method main 0 0 {
    spawn Main.locked
    pop
    spawn Main.unlocked
    pop
    halt
  }
}
entry Main.main
`)
	requireFinding(t, r, analysis.ARaces, "", "possible data race")
}

// Both sides under the same global monitor: no race.
func TestRaceGuardedCleanFixture(t *testing.T) {
	r := analyzeSrc(t, `
program guarded
class Main {
  static x
  static lock ref
  method worker 0 0 {
    gets Main.lock
    monenter
    gets Main.x
    iconst 1
    add
    puts Main.x
    gets Main.lock
    monexit
    ret
  }
  method main 0 0 {
    spawn Main.worker
    pop
    spawn Main.worker
    pop
    halt
  }
}
entry Main.main
`)
	for _, f := range r.Findings {
		if f.Analysis == analysis.ARaces {
			t.Errorf("guarded program should have no race findings, got %s", f)
		}
	}
}

func TestYieldCallbackFixture(t *testing.T) {
	r := analyzeSrc(t, `
program yieldfix
class Main {
  method handler 2 2 {
    iconst 5
    sleep
    ret
  }
  method main 0 0 {
    sconst "Main.handler"
    iconst 1
    native pollevents 2
    pop
    halt
  }
}
entry Main.main
`)
	f := requireFinding(t, r, analysis.AYield, "Main.handler", "inside the callback closure")
	if !strings.Contains(f.Message, "Main.handler") {
		t.Errorf("callback finding should name the handler: %s", f.Message)
	}
}

func TestYieldUnresolvableHandlerFixture(t *testing.T) {
	r := analyzeSrc(t, `
program yieldfix2
class Main {
  static h ref
  method main 0 0 {
    gets Main.h
    iconst 1
    native pollevents 2
    pop
    halt
  }
}
entry Main.main
`)
	requireFinding(t, r, analysis.AYield, "Main.main", "cannot be audited")
}

func TestCoverageFixture(t *testing.T) {
	r := analyzeSrc(t, `
program coverfix
class Main {
  method main 0 0 {
    native remotedict 0
    pop
    halt
  }
}
entry Main.main
`)
	requireFinding(t, r, analysis.ACoverage, "Main.main", "remote-reflection channel")
}

// An unregistered native (simulated by a coverage registry that does not
// know "random") is the replay-divergence case the audit exists for.
func TestCoverageUnknownNative(t *testing.T) {
	prog, err := bytecode.Assemble(`
program coverfix2
class Main {
  method main 0 0 {
    native random 0
    pop
    halt
  }
}
entry Main.main
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vetCfg()
	cfg.NativeCoverage = func(string) (string, bool) { return "", false }
	r := analysis.Analyze(prog, cfg)
	requireFinding(t, r, analysis.ACoverage, "Main.main", "not in the record-instrumentation registry")
}

func TestDeadcodeFixture(t *testing.T) {
	r := analyzeSrc(t, `
program deadfix
class Main {
  method main 0 1 {
    iconst 1
    store 0
    iconst 2
    store 0
    load 0
    print
    halt
    iconst 9
    print
    ret
  }
}
entry Main.main
`)
	requireFinding(t, r, analysis.ADeadcode, "Main.main", "dead store: local 0")
	requireFinding(t, r, analysis.ADeadcode, "Main.main", "unreachable code")
}

// TestFixtureJSONLocations re-parses the JSON output and checks the
// machine-readable locations match the in-memory findings.
func TestFixtureJSONLocations(t *testing.T) {
	r := analyzeSrc(t, lockFixture)
	var decoded analysis.Report
	if err := json.Unmarshal([]byte(r.JSON()), &decoded); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if decoded.Program != "lockfix" || len(decoded.Findings) != len(r.Findings) {
		t.Fatalf("JSON lost findings: %d vs %d", len(decoded.Findings), len(r.Findings))
	}
	for i, f := range decoded.Findings {
		if f != r.Findings[i] {
			t.Errorf("finding %d differs after JSON round-trip: %+v vs %+v", i, f, r.Findings[i])
		}
		if f.Method == "" || f.Line <= 0 {
			t.Errorf("JSON finding %d missing location: %+v", i, f)
		}
	}
}
