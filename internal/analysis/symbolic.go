package analysis

import (
	"fmt"
	"sort"

	"dejavu/internal/bytecode"
)

// The symbolic layer names runtime values statically so the lock and race
// analyses can reason about identity: which object a MonEnter acquires,
// which object a field access touches. The domain is a small tree of
// provenances — statics, allocation sites, method-entry arguments, fields
// and elements of other symbols — with Unknown as the top element. Joins
// move strictly toward Unknown, so every chain is finite.

type symKind uint8

const (
	symUnknown symKind = iota
	symConst           // some primitive constant (value untracked)
	symStr             // string constant; a = Strings index
	symLocal           // method argument a, unresolved across calls
	symStatic          // current value of static slot b of class a
	symNew             // object allocated at (method a, pc b)
	symField           // value of field slot a of base
	symElem            // some element of array base
)

// maxSymDepth caps symbol trees; deeper derivations widen to Unknown,
// keeping the lattice finite.
const maxSymDepth = 4

// SymVal is one abstract value. Values are immutable after construction.
type SymVal struct {
	kind symKind
	a, b int32
	base *SymVal
}

var (
	unknownSym = &SymVal{kind: symUnknown}
	constSym   = &SymVal{kind: symConst}
)

func (s *SymVal) depth() int {
	d := 1
	for s.base != nil {
		d++
		s = s.base
	}
	return d
}

func mkField(base *SymVal, slot int32) *SymVal {
	if base == nil || base.kind == symUnknown || base.depth() >= maxSymDepth {
		return unknownSym
	}
	return &SymVal{kind: symField, a: slot, base: base}
}

func mkElem(base *SymVal) *SymVal {
	if base == nil || base.kind == symUnknown || base.depth() >= maxSymDepth {
		return unknownSym
	}
	return &SymVal{kind: symElem, base: base}
}

func symEqual(a, b *SymVal) bool {
	for {
		if a == b {
			return true
		}
		if a == nil || b == nil {
			return false
		}
		if a.kind != b.kind || a.a != b.a || a.b != b.b {
			return false
		}
		a, b = a.base, b.base
		if a == nil && b == nil {
			return true
		}
	}
}

// join returns a if the symbols agree, Unknown otherwise.
func join(a, b *SymVal) *SymVal {
	if symEqual(a, b) {
		return a
	}
	return unknownSym
}

// key renders a canonical identity string (used for lock/location sets).
func (s *SymVal) key(p *bytecode.Program) string {
	switch s.kind {
	case symConst:
		return "const"
	case symStr:
		return fmt.Sprintf("str%d", s.a)
	case symLocal:
		return fmt.Sprintf("arg%d", s.a)
	case symStatic:
		return "static:" + p.Classes[s.a].Name + "." + p.Classes[s.a].Statics[s.b].Name
	case symNew:
		return fmt.Sprintf("new:%s:%d", p.Methods[s.a].FullName(), s.b)
	case symField:
		return fmt.Sprintf("%s.f%d", s.base.key(p), s.a)
	case symElem:
		return s.base.key(p) + "[]"
	default:
		return "?"
	}
}

// symState is the abstract machine state at one point: operand stack,
// locals, and the stack of monitors held by the executing thread.
type symState struct {
	stack  []*SymVal
	locals []*SymVal
	locks  []*SymVal // innermost last
}

func (s *symState) clone() *symState {
	return &symState{
		stack:  append([]*SymVal(nil), s.stack...),
		locals: append([]*SymVal(nil), s.locals...),
		locks:  append([]*SymVal(nil), s.locks...),
	}
}

// meetState joins src into acc, reporting change. Lock stacks of unequal
// depth are truncated to the common prefix (the imbalance itself is
// reported separately by the locks analysis, which compares edge depths
// after the fixpoint).
func meetState(acc, src *symState) (*symState, bool) {
	changed := false
	joinSlice := func(dst, from []*SymVal) []*SymVal {
		if len(from) < len(dst) {
			dst = dst[:len(from)]
			changed = true
		}
		for i := range dst {
			m := join(dst[i], from[i])
			if !symEqual(m, dst[i]) {
				dst[i] = m
				changed = true
			}
		}
		return dst
	}
	acc.stack = joinSlice(acc.stack, src.stack)
	acc.locals = joinSlice(acc.locals, src.locals)
	acc.locks = joinSlice(acc.locks, src.locks)
	return acc, changed
}

// maxLockDepth bounds the abstract monitor stack (a MonEnter loop would
// otherwise grow it without bound before the join truncates it).
const maxLockDepth = 64

// symEvents receives the facts the final (post-fixpoint) pass emits.
// All callbacks are optional.
type symEvents struct {
	// onAccess fires for every heap access: GetS/PutS/GetF/PutF/ALoad/AStore.
	onAccess func(pc int, in bytecode.Instr, target *SymVal, write bool, locks []*SymVal)
	// onLock fires for monitor/wait findings discovered during execution.
	onLock func(pc int, format string, args ...any)
	// onNative fires at Native sites with the popped argument symbols.
	onNative func(pc int, name string, args []*SymVal)
	// onCall fires at Call/CallV/Spawn sites with callee IDs and actuals.
	onCall func(pc int, targets []int, actuals []*SymVal)
}

// model is the whole-program symbolic analysis: per-method CFGs, verifier
// facts, and the interprocedural argument summaries reached by fixpoint.
type model struct {
	prog  *bytecode.Program
	cfg   Config
	facts []bytecode.MethodFacts
	cfgs  []*CFG

	summaries  [][]*SymVal // per method: join of actuals at every call site; nil entry = no site seen
	callvCands map[int32][]int
	onceNew    map[[2]int32]bool // New sites that execute at most once
	inStates   [][]*symState     // per method, per block: fixpoint entry states
}

// buildModel runs the interprocedural fixpoint. The program must already
// have passed Verify (facts supplied).
func buildModel(p *bytecode.Program, cfg Config, facts []bytecode.MethodFacts) *model {
	mo := &model{
		prog:       p,
		cfg:        cfg,
		facts:      facts,
		cfgs:       make([]*CFG, len(p.Methods)),
		summaries:  make([][]*SymVal, len(p.Methods)),
		callvCands: map[int32][]int{},
		onceNew:    map[[2]int32]bool{},
	}
	for i, m := range p.Methods {
		mo.cfgs[i] = BuildCFG(m)
	}
	// CallV candidate sets by string-pool index of the method name.
	for si, s := range p.Strings {
		for _, m := range p.Methods {
			if m.Name == s {
				mo.callvCands[int32(si)] = append(mo.callvCands[int32(si)], m.ID)
			}
		}
	}
	// New sites executing at most once: in the entry method, outside any
	// cycle, with the entry method never called or spawned again.
	entryReentered := false
	for _, m := range p.Methods {
		for _, in := range m.Code {
			switch in.Op {
			case bytecode.Call, bytecode.Spawn:
				if int(in.A) == p.Entry {
					entryReentered = true
				}
			case bytecode.CallV:
				for _, id := range mo.callvCands[in.A] {
					if id == p.Entry {
						entryReentered = true
					}
				}
			}
		}
	}
	if !entryReentered {
		em := p.Methods[p.Entry]
		inCycle := mo.cfgs[p.Entry].InCycle()
		for pc, in := range em.Code {
			if (in.Op == bytecode.New || in.Op == bytecode.NewArr) && !inCycle[mo.cfgs[p.Entry].BlockOf[pc]] {
				mo.onceNew[[2]int32{int32(p.Entry), int32(pc)}] = true
			}
		}
	}

	// Interprocedural rounds: solve every method intra-procedurally with
	// the current summaries, harvest call-site actuals into new summaries,
	// repeat to fixpoint (bounded; the summary lattice is tiny).
	for round := 0; round < 12; round++ {
		changed := false
		for id := range p.Methods {
			mo.solveMethod(id)
			ev := symEvents{onCall: func(pc int, targets []int, actuals []*SymVal) {
				for _, tgt := range targets {
					if mo.mergeSummary(tgt, actuals) {
						changed = true
					}
				}
			}}
			mo.walkMethod(id, ev)
		}
		if !changed {
			break
		}
	}
	// Final intra states under the settled summaries.
	for id := range p.Methods {
		mo.solveMethod(id)
	}
	return mo
}

// mergeSummary joins actuals into the callee's argument summary.
func (mo *model) mergeSummary(callee int, actuals []*SymVal) bool {
	m := mo.prog.Methods[callee]
	if len(actuals) != m.NArgs {
		return false
	}
	if mo.summaries[callee] == nil {
		mo.summaries[callee] = append([]*SymVal(nil), actuals...)
		return true
	}
	sum := mo.summaries[callee]
	changed := false
	for i := range sum {
		j := join(sum[i], actuals[i])
		if !symEqual(j, sum[i]) {
			sum[i] = j
			changed = true
		}
	}
	return changed
}

// entryState builds a method's abstract entry state: argument slots take
// their interprocedural summary (or a symbolic placeholder when no call
// site resolved them), remaining locals start as zeroed primitives.
func (mo *model) entryState(id int) *symState {
	m := mo.prog.Methods[id]
	st := &symState{locals: make([]*SymVal, m.NLocals)}
	sum := mo.summaries[id]
	for i := range st.locals {
		switch {
		case i >= m.NArgs:
			st.locals[i] = constSym
		case sum != nil && sum[i].kind != symUnknown:
			st.locals[i] = sum[i]
		default:
			st.locals[i] = &SymVal{kind: symLocal, a: int32(i)}
		}
	}
	return st
}

// solveMethod computes the per-block fixpoint entry states for method id.
func (mo *model) solveMethod(id int) {
	g := mo.cfgs[id]
	entry := mo.entryState(id)
	if mo.inStates == nil {
		mo.inStates = make([][]*symState, len(mo.prog.Methods))
	}
	mo.inStates[id] = Solve(g, Forward, entry,
		func(s *symState) *symState { return s.clone() },
		func(b *Block, in *symState) *symState {
			st := in.clone()
			for pc := b.Start; pc < b.End; pc++ {
				mo.exec(id, pc, st, symEvents{})
			}
			return st
		},
		meetState)
}

// walkMethod replays every reachable block once over its fixpoint entry
// state, firing ev's callbacks. Deterministic: blocks in RPO.
func (mo *model) walkMethod(id int, ev symEvents) {
	g := mo.cfgs[id]
	states := mo.inStates[id]
	for _, bi := range g.RPO() {
		if states[bi] == nil {
			continue
		}
		st := states[bi].clone()
		for pc := g.Blocks[bi].Start; pc < g.Blocks[bi].End; pc++ {
			mo.exec(id, pc, st, ev)
		}
	}
}

// pop with defensive underflow handling (Verify rules it out, but the
// walker must never panic on adversarial input).
func (st *symState) pop() *SymVal {
	if len(st.stack) == 0 {
		return unknownSym
	}
	v := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	return v
}

func (st *symState) push(v *SymVal) { st.stack = append(st.stack, v) }

// popN pops n values, returning them in evaluation (push) order.
func (st *symState) popN(n int) []*SymVal {
	if n < 0 {
		n = 0
	}
	out := make([]*SymVal, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = st.pop()
	}
	return out
}

// heldLocks filters the monitor stack down to globally nameable locks
// (stable identity across threads): statics and once-allocated sites.
func (mo *model) heldLocks(st *symState) []*SymVal {
	var out []*SymVal
	for _, l := range st.locks {
		if mo.lockGlobal(l) {
			out = append(out, l)
		}
	}
	return out
}

// lockGlobal reports whether l names one runtime object across all
// threads: a static field's value (assumed stable, as in Eraser) or an
// allocation site that executes at most once.
func (mo *model) lockGlobal(l *SymVal) bool {
	switch l.kind {
	case symStatic:
		return true
	case symNew:
		return mo.onceNew[[2]int32{l.a, l.b}]
	}
	return false
}

// locGlobal reports whether s is usable as a shared-location name: global
// locks plus fields/elements reached from them.
func (mo *model) locGlobal(s *SymVal) bool {
	switch s.kind {
	case symStatic:
		return true
	case symNew:
		return mo.onceNew[[2]int32{s.a, s.b}]
	case symField, symElem:
		return mo.locGlobal(s.base)
	}
	return false
}

// exec interprets one instruction over st, firing ev callbacks.
func (mo *model) exec(id, pc int, st *symState, ev symEvents) {
	m := mo.prog.Methods[id]
	in := m.Code[pc]
	held := func() []*SymVal { return mo.heldLocks(st) }
	access := func(target *SymVal, write bool) {
		if ev.onAccess != nil {
			ev.onAccess(pc, in, target, write, held())
		}
	}
	lockf := func(format string, args ...any) {
		if ev.onLock != nil {
			ev.onLock(pc, format, args...)
		}
	}
	// waitHeld checks that obj's monitor is provably held.
	waitHeld := func(what string, obj *SymVal) {
		if len(st.locks) == 0 {
			lockf("%s with no monitor held", what)
			return
		}
		if obj.kind == symUnknown {
			return
		}
		for _, l := range st.locks {
			if l.kind == symUnknown || symEqual(l, obj) {
				return
			}
		}
		lockf("%s on %s, whose monitor is not held (held: %s)", what, obj.key(mo.prog), lockNames(st.locks, mo.prog))
	}

	switch in.Op {
	case bytecode.Nop, bytecode.YieldOp:
	case bytecode.IConst, bytecode.LConst:
		st.push(constSym)
	case bytecode.SConst:
		st.push(&SymVal{kind: symStr, a: in.A})
	case bytecode.Null:
		st.push(constSym)
	case bytecode.Pop:
		st.pop()
	case bytecode.Dup:
		if n := len(st.stack); n > 0 {
			st.push(st.stack[n-1])
		} else {
			st.push(unknownSym)
		}
	case bytecode.Swap:
		if n := len(st.stack); n >= 2 {
			st.stack[n-1], st.stack[n-2] = st.stack[n-2], st.stack[n-1]
		}
	case bytecode.Load:
		if int(in.A) < len(st.locals) {
			st.push(st.locals[in.A])
		} else {
			st.push(unknownSym)
		}
	case bytecode.Store:
		v := st.pop()
		if int(in.A) < len(st.locals) {
			st.locals[in.A] = v
		}
	case bytecode.Add, bytecode.Sub, bytecode.Mul, bytecode.Div, bytecode.Mod,
		bytecode.And, bytecode.Or, bytecode.Xor, bytecode.Shl, bytecode.Shr,
		bytecode.CmpEq, bytecode.CmpNe, bytecode.CmpLt, bytecode.CmpLe, bytecode.CmpGt, bytecode.CmpGe:
		st.pop()
		st.pop()
		st.push(unknownSym)
	case bytecode.Neg, bytecode.Not:
		st.pop()
		st.push(unknownSym)
	case bytecode.Jmp:
	case bytecode.Jz, bytecode.Jnz:
		st.pop()
	case bytecode.Ret:
	case bytecode.RetV:
		st.pop()
	case bytecode.Call, bytecode.Spawn:
		tgt := int(in.A)
		actuals := st.popN(mo.prog.Methods[tgt].NArgs)
		if ev.onCall != nil {
			ev.onCall(pc, []int{tgt}, actuals)
		}
		if in.Op == bytecode.Spawn {
			st.push(constSym) // thread id
		} else if mo.facts[tgt].ReturnsValue {
			st.push(unknownSym)
		}
	case bytecode.CallV:
		cands := mo.callvCands[in.A]
		actuals := st.popN(int(in.B))
		if ev.onCall != nil && len(cands) > 0 {
			ev.onCall(pc, cands, actuals)
		}
		if len(cands) > 0 && mo.facts[cands[0]].ReturnsValue {
			st.push(unknownSym)
		}
	case bytecode.Native:
		name := ""
		if int(in.A) < len(mo.prog.Strings) {
			name = mo.prog.Strings[in.A]
		}
		args := st.popN(int(in.B))
		if ev.onNative != nil {
			ev.onNative(pc, name, args)
		}
		pushes := 1
		if mo.cfg.Natives != nil {
			if _, p, ok := mo.cfg.Natives(name); ok {
				pushes = p
			}
		}
		for i := 0; i < pushes; i++ {
			st.push(unknownSym)
		}
	case bytecode.New, bytecode.NewArr:
		if in.Op == bytecode.NewArr {
			st.pop() // length
		}
		st.push(&SymVal{kind: symNew, a: int32(id), b: int32(pc)})
	case bytecode.GetF:
		recv := st.pop()
		access(mkField(recv, in.A), false)
		st.push(mkField(recv, in.A))
	case bytecode.PutF:
		st.pop() // value
		recv := st.pop()
		access(mkField(recv, in.A), true)
	case bytecode.GetS:
		access(&SymVal{kind: symStatic, a: in.A, b: in.B}, false)
		st.push(&SymVal{kind: symStatic, a: in.A, b: in.B})
	case bytecode.PutS:
		st.pop()
		access(&SymVal{kind: symStatic, a: in.A, b: in.B}, true)
	case bytecode.ALoad:
		st.pop() // index
		arr := st.pop()
		access(mkElem(arr), false)
		st.push(mkElem(arr))
	case bytecode.AStore:
		st.pop() // value
		st.pop() // index
		arr := st.pop()
		access(mkElem(arr), true)
	case bytecode.ArrLen, bytecode.InstOf:
		st.pop()
		st.push(unknownSym)
	case bytecode.MonEnter:
		obj := st.pop()
		if len(st.locks) < maxLockDepth {
			st.locks = append(st.locks, obj)
		} else {
			lockf("monitor stack deeper than %d; lock tracking saturated", maxLockDepth)
		}
	case bytecode.MonExit:
		obj := st.pop()
		n := len(st.locks)
		switch {
		case n == 0:
			lockf("monitorexit with no monitor held")
		case obj.kind == symUnknown || st.locks[n-1].kind == symUnknown || symEqual(st.locks[n-1], obj):
			st.locks = st.locks[:n-1]
		default:
			// Search deeper: a non-LIFO release (legal at runtime, but it
			// defeats structured-locking reasoning, so it is reported).
			found := -1
			for i := n - 2; i >= 0; i-- {
				if symEqual(st.locks[i], obj) || st.locks[i].kind == symUnknown {
					found = i
					break
				}
			}
			if found >= 0 {
				lockf("monitor %s released out of LIFO order (innermost held is %s)",
					obj.key(mo.prog), st.locks[n-1].key(mo.prog))
				st.locks = append(st.locks[:found], st.locks[found+1:]...)
			} else {
				lockf("monitorexit on %s, whose monitor is not provably held (held: %s)",
					obj.key(mo.prog), lockNames(st.locks, mo.prog))
				st.locks = st.locks[:n-1]
			}
		}
	case bytecode.Wait:
		waitHeld("wait", st.pop())
	case bytecode.TimedWait:
		st.pop() // millis
		waitHeld("timedwait", st.pop())
	case bytecode.Notify:
		waitHeld("notify", st.pop())
	case bytecode.NotifyAll:
		waitHeld("notifyall", st.pop())
	case bytecode.ThreadID:
		st.push(constSym)
	case bytecode.Sleep, bytecode.Interrupt, bytecode.Print, bytecode.PrintS, bytecode.Assert:
		st.pop()
	case bytecode.Halt:
	}
}

func lockNames(locks []*SymVal, p *bytecode.Program) string {
	if len(locks) == 0 {
		return "none"
	}
	s := ""
	for i, l := range locks {
		if i > 0 {
			s += ", "
		}
		s += l.key(p)
	}
	return s
}

// lockKeys renders held global locks as a sorted key set.
func lockKeys(locks []*SymVal, p *bytecode.Program) []string {
	out := make([]string, 0, len(locks))
	for _, l := range locks {
		out = append(out, l.key(p))
	}
	sort.Strings(out)
	return out
}
