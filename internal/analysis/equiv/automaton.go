package equiv

// The observable-event automaton and its equivalence decision.
//
// Construction: every reachable CFG block becomes an NFA state; walking a
// block's instructions appends one single-symbol transition per
// observable event (through fresh chain states), and the block's
// terminator wires epsilon or "yield"-labeled edges to its successors —
// the taken edge of a backward branch carries the yield event, matching
// the runtime clock's placement exactly. Ret/RetV/Halt emit their own
// symbols into a shared accept state, so return-kind and halt placement
// are part of the language.
//
// Decision: optimizations merge, split, and empty out blocks, so the raw
// automata of equivalent programs rarely align state-for-state. The NFAs
// are therefore determinized by epsilon-closure subset construction —
// the result is canonical in the event language, independent of block
// partitioning — and the DFAs are walked in product. Divergence is the
// first product state whose outgoing symbol sets (or acceptance) differ;
// the walk's BFS order makes the reported path a shortest diverging
// event word. Provenance (instruction pc) rides along on every NFA state
// and transition so a divergence localizes to method/pc/line on both
// sides.

import (
	"fmt"
	"sort"
	"strings"

	"dejavu/internal/analysis"
	"dejavu/internal/bytecode"
)

// nfaTrans is one transition; sym == "" is an epsilon edge.
type nfaTrans struct {
	sym string
	to  int
	pc  int // pc of the instruction emitting sym, -1 for epsilon
}

type nfa struct {
	trans  [][]nfaTrans
	origin []int // per state: the pc this state sits at (provenance), -1 unknown
	accept int   // the shared accept state
}

func (n *nfa) newState(pc int) int {
	n.trans = append(n.trans, nil)
	n.origin = append(n.origin, pc)
	return len(n.trans) - 1
}

func (n *nfa) edge(from, to int, sym string, pc int) {
	n.trans[from] = append(n.trans[from], nfaTrans{sym: sym, to: to, pc: pc})
}

// buildNFA extracts the observable-event automaton of one method.
func buildNFA(p *bytecode.Program, m *bytecode.Method, racy map[string]bool) *nfa {
	g := analysis.BuildCFG(m)
	n := &nfa{}
	entry := n.newState(0)
	_ = entry // state 0 is the start by construction
	blockState := make([]int, len(g.Blocks))
	for i := range blockState {
		blockState[i] = -1
	}
	// Block 0 contains pc 0 and is the entry block.
	for bi := range g.Blocks {
		if !g.Reachable(bi) {
			continue
		}
		if g.Blocks[bi].Start == 0 {
			blockState[bi] = 0
			n.origin[0] = 0
		} else {
			blockState[bi] = n.newState(g.Blocks[bi].Start)
		}
	}
	n.accept = n.newState(-1)

	for bi := range g.Blocks {
		if !g.Reachable(bi) {
			continue
		}
		b := &g.Blocks[bi]
		cur := blockState[bi]
		terminated := false
		for pc := b.Start; pc < b.End; pc++ {
			in := m.Code[pc]
			for _, sym := range instrEvents(p, in, racy) {
				next := n.newState(pc)
				n.edge(cur, next, sym, pc)
				cur = next
			}
			switch in.Op {
			case bytecode.Ret:
				n.edge(cur, n.accept, "ret", pc)
				terminated = true
			case bytecode.RetV:
				n.edge(cur, n.accept, "retv", pc)
				terminated = true
			case bytecode.Halt:
				n.edge(cur, n.accept, "halt", pc)
				terminated = true
			case bytecode.Jmp:
				tgt := blockState[g.BlockOf[in.A]]
				if int(in.A) <= pc {
					n.edge(cur, tgt, "yield", pc) // taken backward branch ticks the clock
				} else {
					n.edge(cur, tgt, "", -1)
				}
				terminated = true
			case bytecode.Jz, bytecode.Jnz:
				if v, ok := manifestConst(p, m, b, pc); ok {
					// The branch condition is pinned by the instruction
					// before it: only one edge is feasible. Pruning the dead
					// edge here — identically on both sides — is what lets
					// the optimizer's constant-branch folding certify: the
					// runtime never takes (and never yields on) that edge.
					if taken := (in.Op == bytecode.Jz) == (v == 0); taken {
						tgt := blockState[g.BlockOf[in.A]]
						if int(in.A) <= pc {
							n.edge(cur, tgt, "yield", pc)
						} else {
							n.edge(cur, tgt, "", -1)
						}
					} else {
						n.edge(cur, blockState[g.BlockOf[pc+1]], "", -1)
					}
					terminated = true
					continue
				}
				// Successor order per BuildCFG: fallthrough first, then taken.
				fall := blockState[g.BlockOf[pc+1]]
				n.edge(cur, fall, "", -1)
				tgt := blockState[g.BlockOf[in.A]]
				if int(in.A) <= pc {
					n.edge(cur, tgt, "yield", pc)
				} else {
					n.edge(cur, tgt, "", -1)
				}
				terminated = true
			}
		}
		if !terminated {
			// Fallthrough into the next block.
			for _, s := range b.Succs {
				n.edge(cur, blockState[s], "", -1)
			}
		}
	}
	return n
}

// instrEvents returns the observable-event symbols executing in emits, in
// execution order. The alphabet covers everything replay must reproduce
// in place:
//
//   - clock events: method prologues (folded into call/spawn symbols) and
//     explicit yields; taken backward branches are handled on CFG edges
//   - synchronization: monitor, wait/notify, sleep, interrupt
//   - natives: every native call (recorded natives replay from the trace;
//     deterministic ones still pin the instrumentation symmetry)
//   - output and checks: print, assert
//   - trapping instructions (div/mod, heap and array accesses,
//     allocation): a trap ends the execution, so its position is part of
//     observable behavior — and keeping allocation in the alphabet pins
//     the allocation sequence, which final-state comparison relies on
//   - racy static accesses: ordered only by the recorded schedule
func instrEvents(p *bytecode.Program, in bytecode.Instr, racy map[string]bool) []string {
	switch in.Op {
	case bytecode.Call:
		return []string{"call:" + p.Methods[in.A].FullName()}
	case bytecode.CallV:
		return []string{fmt.Sprintf("callv:%s/%d", p.Strings[in.A], in.B)}
	case bytecode.Spawn:
		return []string{"spawn:" + p.Methods[in.A].FullName()}
	case bytecode.Native:
		return []string{fmt.Sprintf("native:%s/%d", p.Strings[in.A], in.B)}
	case bytecode.YieldOp:
		return []string{"yieldop"}
	case bytecode.MonEnter:
		return []string{"monenter"}
	case bytecode.MonExit:
		return []string{"monexit"}
	case bytecode.Wait:
		return []string{"wait"}
	case bytecode.TimedWait:
		return []string{"timedwait"}
	case bytecode.Notify:
		return []string{"notify"}
	case bytecode.NotifyAll:
		return []string{"notifyall"}
	case bytecode.Sleep:
		return []string{"sleep"}
	case bytecode.Interrupt:
		return []string{"interrupt"}
	case bytecode.Print:
		return []string{"print"}
	case bytecode.PrintS:
		return []string{"prints"}
	case bytecode.Assert:
		return []string{"assert"}
	case bytecode.Div:
		return []string{"div"}
	case bytecode.Mod:
		return []string{"mod"}
	case bytecode.New:
		return []string{"new:" + p.Classes[in.A].Name}
	case bytecode.NewArr:
		return []string{fmt.Sprintf("newarr:%d", in.A)}
	case bytecode.GetF:
		return []string{fmt.Sprintf("getf:%d", in.A)}
	case bytecode.PutF:
		return []string{fmt.Sprintf("putf:%d", in.A)}
	case bytecode.ALoad:
		return []string{"aload"}
	case bytecode.AStore:
		return []string{"astore"}
	case bytecode.ArrLen:
		return []string{"arrlen"}
	case bytecode.InstOf:
		return []string{"instof:" + p.Classes[in.A].Name}
	case bytecode.GetS:
		if racy[staticSlotName(p, in)] {
			return []string{"gets:" + staticSlotName(p, in)}
		}
	case bytecode.PutS:
		if racy[staticSlotName(p, in)] {
			return []string{"puts:" + staticSlotName(p, in)}
		}
	}
	return nil
}

// manifestConst returns the value feeding a conditional branch at pc when
// it is pinned by the immediately preceding instruction of the same block
// (nothing can enter between the two: the branch is never a leader). The
// optimizer folds exactly this shape, so the automaton must resolve it
// the same way.
func manifestConst(p *bytecode.Program, m *bytecode.Method, b *analysis.Block, pc int) (int64, bool) {
	if pc <= b.Start {
		return 0, false
	}
	switch prev := m.Code[pc-1]; prev.Op {
	case bytecode.IConst:
		return int64(prev.A), true
	case bytecode.LConst:
		return p.Ints[prev.A], true
	}
	return 0, false
}

func staticSlotName(p *bytecode.Program, in bytecode.Instr) string {
	c := p.Classes[in.A]
	return c.Name + "." + c.Statics[in.B].Name
}

// dfa is the determinized automaton. State 0 is the start state.
type dfa struct {
	// next[s] maps symbol -> successor state.
	next []map[string]int
	// pcOf[s][sym] is the smallest pc among NFA transitions realizing sym
	// from s — the provenance reported on divergence.
	pcOf []map[string]int
	// anchor[s] is the smallest origin pc among s's member NFA states.
	anchor []int
	// accepting[s]: s contains the NFA accept state.
	accepting []bool
}

// determinize performs epsilon-closure subset construction. The result
// depends only on the automaton's event language, not its state layout,
// which is what lets the product walk compare programs whose basic-block
// partitions were reshaped by optimization.
func determinize(n *nfa) *dfa {
	closure := func(set []int) []int {
		seen := make(map[int]bool, len(set))
		work := append([]int(nil), set...)
		for _, s := range set {
			seen[s] = true
		}
		for len(work) > 0 {
			s := work[len(work)-1]
			work = work[:len(work)-1]
			for _, t := range n.trans[s] {
				if t.sym == "" && !seen[t.to] {
					seen[t.to] = true
					work = append(work, t.to)
				}
			}
		}
		out := make([]int, 0, len(seen))
		for s := range seen {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}
	key := func(set []int) string {
		var sb strings.Builder
		for _, s := range set {
			fmt.Fprintf(&sb, "%d,", s)
		}
		return sb.String()
	}

	d := &dfa{}
	index := map[string]int{}
	var sets [][]int
	intern := func(set []int) int {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := len(sets)
		index[k] = id
		sets = append(sets, set)
		d.next = append(d.next, map[string]int{})
		d.pcOf = append(d.pcOf, map[string]int{})
		anchor, accepting := -1, false
		for _, s := range set {
			if s == n.accept {
				accepting = true
			}
			if pc := n.origin[s]; pc >= 0 && (anchor == -1 || pc < anchor) {
				anchor = pc
			}
		}
		d.anchor = append(d.anchor, anchor)
		d.accepting = append(d.accepting, accepting)
		return id
	}

	start := intern(closure([]int{0}))
	work := []int{start}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		moves := map[string][]int{}
		pcs := map[string]int{}
		for _, s := range sets[id] {
			for _, t := range n.trans[s] {
				if t.sym == "" {
					continue
				}
				moves[t.sym] = append(moves[t.sym], t.to)
				if cur, ok := pcs[t.sym]; !ok || (t.pc >= 0 && t.pc < cur) {
					pcs[t.sym] = t.pc
				}
			}
		}
		for _, sym := range sortedKeys(moves) {
			before := len(sets)
			to := intern(closure(moves[sym]))
			if len(sets) > before {
				work = append(work, to) // freshly interned state: explore it
			}
			d.next[id][sym] = to
			d.pcOf[id][sym] = pcs[sym]
		}
	}
	return d
}

// compareDFA walks the product of the two methods' DFAs breadth-first and
// appends a finding for the first diverging state pair. It returns the
// number of matched transitions certified.
func compareDFA(r *analysis.Report, ma, mb *bytecode.Method, da, db *dfa) int {
	type pair struct{ a, b int }
	type path struct {
		prev *path
		sym  string
	}
	seen := map[pair]bool{{0, 0}: true}
	queue := []pair{{0, 0}}
	trail := map[pair]*path{{0, 0}: nil}
	checked := 0

	render := func(p *path) string {
		var syms []string
		for ; p != nil; p = p.prev {
			syms = append(syms, p.sym)
		}
		for i, j := 0, len(syms)-1; i < j; i, j = i+1, j-1 {
			syms[i], syms[j] = syms[j], syms[i]
		}
		if len(syms) == 0 {
			return "at method entry"
		}
		const max = 8
		if len(syms) > max {
			syms = append([]string{fmt.Sprintf("... %d events ...", len(syms)-max)}, syms[len(syms)-max:]...)
		}
		return "after [" + strings.Join(syms, " ") + "]"
	}
	loc := func(m *bytecode.Method, pc int) string {
		if pc < 0 {
			return "pc=?"
		}
		s := fmt.Sprintf("pc=%d", pc)
		if pc < len(m.Lines) && m.Lines[pc] > 0 {
			s += fmt.Sprintf(" line=%d", m.Lines[pc])
		}
		return s
	}
	symsOf := func(d *dfa, s int) []string { return sortedKeys(d.next[s]) }

	report := func(p pair, pcOverride int, msg string) {
		f := analysis.Finding{
			Analysis: analysis.AEquiv,
			Method:   ma.FullName(),
			Message:  msg,
		}
		pc := da.anchor[p.a]
		if pcOverride >= 0 {
			pc = pcOverride // the diverging event's own pc in the left program
		}
		if pc >= 0 {
			f.PC = pc
			if pc < len(ma.Lines) {
				f.Line = int(ma.Lines[pc])
			}
		}
		r.Findings = append(r.Findings, f)
	}

	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		sa, sb := symsOf(da, p.a), symsOf(db, p.b)
		if !equalStrings(sa, sb) {
			where := render(trail[p])
			missing, side, haveM, havePC, otherM, otherPC := divergingSym(sa, sb, ma, mb, da, db, p.a, p.b)
			anchor := -1
			if side == "left" {
				anchor = havePC // the event only the left program emits
			}
			report(p, anchor, fmt.Sprintf(
				"observable events diverge %s: %s emits %q (%s) where the other side emits %s (%s); left %s, right %s",
				where, side, missing, loc(haveM, havePC), renderSyms(otherSide(sa, sb, side)), loc(otherM, otherPC),
				renderSyms(sa), renderSyms(sb)))
			return checked
		}
		if da.accepting[p.a] != db.accepting[p.b] {
			report(p, -1, fmt.Sprintf("termination diverges %s: only one side can end the method here", render(trail[p])))
			return checked
		}
		for _, sym := range sa {
			checked++
			np := pair{da.next[p.a][sym], db.next[p.b][sym]}
			if !seen[np] {
				seen[np] = true
				trail[np] = &path{prev: trail[p], sym: sym}
				queue = append(queue, np)
			}
		}
	}
	return checked
}

// divergingSym picks the lexicographically first symbol present on
// exactly one side and returns it with its provenance.
func divergingSym(sa, sb []string, ma, mb *bytecode.Method, da, db *dfa, pa, pb int) (sym, side string, m *bytecode.Method, pc int, om *bytecode.Method, opc int) {
	inB := map[string]bool{}
	for _, s := range sb {
		inB[s] = true
	}
	for _, s := range sa {
		if !inB[s] {
			return s, "left", ma, da.pcOf[pa][s], mb, db.anchor[pb]
		}
	}
	inA := map[string]bool{}
	for _, s := range sa {
		inA[s] = true
	}
	for _, s := range sb {
		if !inA[s] {
			return s, "right", mb, db.pcOf[pb][s], ma, da.anchor[pa]
		}
	}
	return "", "left", ma, -1, mb, -1
}

func otherSide(sa, sb []string, side string) []string {
	if side == "left" {
		return sb
	}
	return sa
}

func renderSyms(syms []string) string {
	if len(syms) == 0 {
		return "nothing"
	}
	return "{" + strings.Join(syms, " ") + "}"
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
