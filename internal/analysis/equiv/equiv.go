// Package equiv decides replay equivalence of two bytecode programs: an
// optimizer may transform code freely, but the recorded schedule of
// observable events must stay exactly reproducible (the paper's
// perturbation-free requirement for cross-optimized applications).
//
// Per method, the package extracts an observable-event automaton: CFG
// blocks are states and edges carry the ordered sequence of
// replay-observable operations — yield points per the clock placement
// rules (taken backward branches, method prologues via Call/CallV/Spawn,
// explicit YieldOp), monitor and wait/notify operations, native calls,
// output and trapping instructions, and static accesses the races
// analysis flags as racy. Two programs are equivalent when, method by
// method, the automata accept the same event language — decided by
// epsilon-closure determinization followed by a product walk that either
// visits every reachable state pair without disagreement or returns the
// first diverging event path as a structured finding with method/pc/line
// on both sides.
//
// The check is deliberately one-sided-safe: anything it cannot prove
// equivalent is inequivalent. The optimizer pipeline treats that as
// certify-or-refuse.
package equiv

import (
	"fmt"
	"sort"
	"strings"

	"dejavu/internal/analysis"
	"dejavu/internal/bytecode"
)

// Result is the certifier's verdict over one program pair.
type Result struct {
	// Report carries one AEquiv finding per divergence (or one AVerify
	// finding when a side does not verify). Clean report == equivalent.
	Report *analysis.Report
	// Equivalent is Report.Clean(), split out for call sites.
	Equivalent bool
	// EventsChecked counts the product-automaton transitions the walk
	// certified: the number of distinct observable-event steps proven to
	// match between the two programs.
	EventsChecked int
}

// Check decides replay equivalence of a (the reference) and b (the
// candidate, e.g. an optimizer's output). natives is the native-call
// registry used for stack-shape verification (normally
// vm.NativeSignature).
func Check(a, b *bytecode.Program, natives bytecode.NativeSig) *Result {
	res := &Result{Report: &analysis.Report{
		Program:  a.Name + " vs " + b.Name,
		Findings: []analysis.Finding{},
	}}

	if !verifySide(res.Report, a, natives, "left") || !verifySide(res.Report, b, natives, "right") {
		return res
	}
	if !checkStructure(res.Report, a, b) {
		return res
	}

	// Racy statics from either side count as observable on both: if the
	// optimizer's output made an access racy (or the input already was),
	// its placement is ordered only by the recorded schedule.
	racy := map[string]bool{}
	for slot := range analysis.RacyStatics(a, natives) {
		racy[staticName(a, slot)] = true
	}
	for slot := range analysis.RacyStatics(b, natives) {
		racy[staticName(b, slot)] = true
	}

	names := make([]string, 0, len(a.Methods))
	for _, m := range a.Methods {
		names = append(names, m.FullName())
	}
	sort.Strings(names)
	for _, name := range names {
		ma, _ := a.MethodByName(name)
		mb, _ := b.MethodByName(name)
		da := determinize(buildNFA(a, ma, racy))
		db := determinize(buildNFA(b, mb, racy))
		res.EventsChecked += compareDFA(res.Report, ma, mb, da, db)
	}
	res.Equivalent = res.Report.Clean()
	return res
}

// verifySide validates and verifies one program, reporting a rejection as
// an AVerify finding tagged with the side.
func verifySide(r *analysis.Report, p *bytecode.Program, natives bytecode.NativeSig, side string) bool {
	if err := p.Validate(); err != nil {
		r.Findings = append(r.Findings, analysis.Finding{
			Analysis: analysis.AVerify,
			Message:  fmt.Sprintf("%s program rejected: %v", side, err),
		})
		return false
	}
	if _, err := bytecode.Verify(p, bytecode.VerifyConfig{Natives: natives}); err != nil {
		r.Findings = append(r.Findings, analysis.Finding{
			Analysis: analysis.AVerify,
			Message:  fmt.Sprintf("%s program does not verify: %v", side, err),
		})
		return false
	}
	return true
}

// checkStructure proves the two programs agree on the shape equivalence
// is defined over: the same entry point, the same method set (by full
// name and arity), and the same class layout (class names, static and
// instance field lists). Code bodies are free to differ — that is what
// the automata decide.
func checkStructure(r *analysis.Report, a, b *bytecode.Program) bool {
	bad := func(format string, args ...any) {
		r.Findings = append(r.Findings, analysis.Finding{
			Analysis: analysis.AEquiv,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	ok := true
	if ea, eb := a.EntryMethod().FullName(), b.EntryMethod().FullName(); ea != eb {
		bad("entry methods differ: left starts at %s, right at %s", ea, eb)
		ok = false
	}
	type sig struct {
		nargs int
	}
	sigs := func(p *bytecode.Program) map[string]sig {
		out := make(map[string]sig, len(p.Methods))
		for _, m := range p.Methods {
			out[m.FullName()] = sig{nargs: m.NArgs}
		}
		return out
	}
	sa, sb := sigs(a), sigs(b)
	for _, name := range sortedKeys(sa) {
		tb, there := sb[name]
		if !there {
			bad("method %s exists only in the left program", name)
			ok = false
			continue
		}
		if sa[name].nargs != tb.nargs {
			bad("method %s arity differs: %d args left, %d right", name, sa[name].nargs, tb.nargs)
			ok = false
		}
	}
	for _, name := range sortedKeys(sb) {
		if _, there := sa[name]; !there {
			bad("method %s exists only in the right program", name)
			ok = false
		}
	}
	layout := func(p *bytecode.Program) map[string]string {
		out := make(map[string]string, len(p.Classes))
		for _, c := range p.Classes {
			var sb strings.Builder
			for _, s := range c.Statics {
				fmt.Fprintf(&sb, "s:%s,", s.Name)
			}
			for _, f := range c.Fields {
				fmt.Fprintf(&sb, "f:%s,", f.Name)
			}
			out[c.Name] = sb.String()
		}
		return out
	}
	la, lb := layout(a), layout(b)
	for _, name := range sortedKeys(la) {
		shape, there := lb[name]
		switch {
		case !there:
			bad("class %s exists only in the left program", name)
			ok = false
		case la[name] != shape:
			bad("class %s field/static layout differs between the programs", name)
			ok = false
		}
	}
	for _, name := range sortedKeys(lb) {
		if _, there := la[name]; !there {
			bad("class %s exists only in the right program", name)
			ok = false
		}
	}
	return ok
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func staticName(p *bytecode.Program, slot [2]int32) string {
	c := p.Classes[slot[0]]
	return c.Name + "." + c.Statics[slot[1]].Name
}
