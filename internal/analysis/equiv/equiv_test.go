package equiv_test

import (
	"strings"
	"testing"

	"dejavu/internal/analysis/equiv"
	"dejavu/internal/bytecode"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

func check(t *testing.T, a, b *bytecode.Program) *equiv.Result {
	t.Helper()
	return equiv.Check(a, b, vm.NativeSignature)
}

// clone round-trips a program through the binary image codec, yielding an
// independent deep copy.
func clone(t *testing.T, p *bytecode.Program) *bytecode.Program {
	t.Helper()
	c, err := bytecode.DecodeImage(bytecode.EncodeImage(p))
	if err != nil {
		t.Fatalf("clone %s: %v", p.Name, err)
	}
	return c
}

// TestSelfEquivalenceCorpus: every workload is equivalent to itself, and
// the check certifies a nonzero number of observable events.
func TestSelfEquivalenceCorpus(t *testing.T) {
	for _, name := range workloads.Names() {
		p := workloads.Registry[name]()
		res := check(t, p, clone(t, p))
		if !res.Equivalent {
			t.Errorf("%s not self-equivalent:\n%s", name, res.Report.Text())
		}
		if res.EventsChecked == 0 {
			t.Errorf("%s: no events certified", name)
		}
	}
}

// twoLoops builds a program with a yield-carrying loop, a monitor
// critical section, and an output, with room for the mutations below.
func twoLoops() *bytecode.Program {
	b := bytecode.NewBuilder("mut")
	cb := b.Class("Main")
	cb.Static("lock", true)
	cb.Static("sum", false)
	main := cb.Method("main", 0, 2)
	main.Line(1).Emit(bytecode.New, int32(cb.ID())).PutStatic(cb, "lock")
	main.Line(2).Const(10).Emit(bytecode.Store, 0)
	main.Label("loop")
	main.Line(3).Emit(bytecode.Load, 0).Const(1).Emit(bytecode.Sub).Emit(bytecode.Store, 0)
	main.Line(4).GetStatic(cb, "lock").Emit(bytecode.MonEnter)
	main.Line(5).GetStatic(cb, "sum").Emit(bytecode.Load, 0).Emit(bytecode.Add).PutStatic(cb, "sum")
	main.Line(6).GetStatic(cb, "lock").Emit(bytecode.MonExit)
	main.Line(7).Emit(bytecode.Load, 0).Branch(bytecode.Jnz, "loop")
	main.Line(8).GetStatic(cb, "sum").Emit(bytecode.Print)
	main.Line(9).Emit(bytecode.Halt)
	b.Entry(main)
	return b.MustProgram()
}

// mutate applies f to a clone of p's entry method code and returns it.
func mutate(t *testing.T, p *bytecode.Program, f func(code []bytecode.Instr) []bytecode.Instr) *bytecode.Program {
	t.Helper()
	c := clone(t, p)
	m := c.Methods[c.Entry]
	m.Code = f(append([]bytecode.Instr(nil), m.Code...))
	for len(m.Lines) < len(m.Code) {
		m.Lines = append(m.Lines, 0)
	}
	m.Lines = m.Lines[:len(m.Code)]
	return c
}

// TestMutationDroppedYieldPoint: a "pass" that rewrites the backward loop
// branch into a forward skip (dropping the yield point the clock counts)
// must be refused, with the finding localized to the loop.
func TestMutationDroppedYieldPoint(t *testing.T) {
	p := twoLoops()
	bad := mutate(t, p, func(code []bytecode.Instr) []bytecode.Instr {
		// Unroll the 10-iteration loop once and fall through: the backward
		// Jnz becomes a Pop, erasing its taken-edge yield event.
		for i, in := range code {
			if in.Op == bytecode.Jnz {
				code[i] = bytecode.Instr{Op: bytecode.Pop}
			}
		}
		return code
	})
	res := check(t, p, bad)
	if res.Equivalent {
		t.Fatal("dropped yield point certified as equivalent")
	}
	f := res.Report.Findings[0]
	if f.Method != "Main.main" || f.PC == 0 && f.Line == 0 {
		t.Fatalf("finding not localized: %+v", f)
	}
	if !strings.Contains(f.Message, "yield") {
		t.Fatalf("finding does not name the missing yield event: %s", f.Message)
	}
	t.Logf("refusal: %s", f)
}

// TestMutationReorderedMonExit: hoisting the MonitorExit out of the loop
// (illegal lock motion — it reorders the exit against the loop's yield
// points) must be refused with a pc/line-localized finding.
func TestMutationReorderedMonExit(t *testing.T) {
	p := twoLoops()
	b := bytecode.NewBuilder("mut")
	cb := b.Class("Main")
	cb.Static("lock", true)
	cb.Static("sum", false)
	main := cb.Method("main", 0, 2)
	main.Line(1).Emit(bytecode.New, int32(cb.ID())).PutStatic(cb, "lock")
	main.Line(2).Const(10).Emit(bytecode.Store, 0)
	main.Label("loop")
	main.Line(3).Emit(bytecode.Load, 0).Const(1).Emit(bytecode.Sub).Emit(bytecode.Store, 0)
	main.Line(4).GetStatic(cb, "lock").Emit(bytecode.MonEnter)
	main.Line(5).GetStatic(cb, "sum").Emit(bytecode.Load, 0).Emit(bytecode.Add).PutStatic(cb, "sum")
	main.Line(7).Emit(bytecode.Load, 0).Branch(bytecode.Jnz, "loop")
	main.Line(6).GetStatic(cb, "lock").Emit(bytecode.MonExit) // hoisted out of the loop
	main.Line(8).GetStatic(cb, "sum").Emit(bytecode.Print)
	main.Line(9).Emit(bytecode.Halt)
	b.Entry(main)
	bad := b.MustProgram()
	res := check(t, p, bad)
	if res.Equivalent {
		t.Fatal("reordered monexit certified as equivalent")
	}
	f := res.Report.Findings[0]
	if f.Method != "Main.main" {
		t.Fatalf("finding lacks method: %+v", f)
	}
	if f.Line == 0 && f.PC == 0 {
		t.Fatalf("finding not pc/line-localized: %+v", f)
	}
	t.Logf("refusal: %s", f)
}

// TestMutationDroppedOutput: deleting a Print changes the event language.
func TestMutationDroppedOutput(t *testing.T) {
	p := twoLoops()
	bad := mutate(t, p, func(code []bytecode.Instr) []bytecode.Instr {
		for i, in := range code {
			if in.Op == bytecode.Print {
				code[i] = bytecode.Instr{Op: bytecode.Pop}
			}
		}
		return code
	})
	if res := check(t, p, bad); res.Equivalent {
		t.Fatal("dropped print certified as equivalent")
	}
}

// TestPureReorderIsEquivalent: reshaping pure code (constant folding, an
// extra nop, different scheduling of pure instructions) certifies.
func TestPureReorderIsEquivalent(t *testing.T) {
	p := twoLoops()
	opt := mutate(t, p, func(code []bytecode.Instr) []bytecode.Instr {
		// Replace "Const 10" with "Const 5; Const 5; Add" — different pure
		// instruction sequence, same observable events.
		var out []bytecode.Instr
		grew := 0
		for _, in := range code {
			if in.Op == bytecode.IConst && in.A == 10 && grew == 0 {
				out = append(out,
					bytecode.Instr{Op: bytecode.IConst, A: 5},
					bytecode.Instr{Op: bytecode.IConst, A: 5},
					bytecode.Instr{Op: bytecode.Add})
				grew = 2
				continue
			}
			// Retarget branches past the growth point.
			if ka, _ := in.Op.Operands(); ka == bytecode.OpTarget && int(in.A) > 2 {
				in.A += int32(grew)
			}
			out = append(out, in)
		}
		return out
	})
	res := check(t, p, opt)
	if !res.Equivalent {
		t.Fatalf("pure reshape refused:\n%s", res.Report.Text())
	}
}

// TestStructureMismatch: a missing method is a structural finding.
func TestStructureMismatch(t *testing.T) {
	p := twoLoops()
	b := bytecode.NewBuilder("mut")
	cb := b.Class("Main")
	cb.Static("lock", true)
	cb.Static("sum", false)
	main := cb.Method("other", 0, 2)
	main.Emit(bytecode.Halt)
	b.Entry(main)
	q := b.MustProgram()
	if res := check(t, p, q); res.Equivalent {
		t.Fatal("different method sets certified as equivalent")
	}
}

// TestRacyStaticObservable: unsynchronized statics become part of the
// alphabet, so reordering two racy writes is refused even though neither
// is a monitor or yield event.
func TestRacyStaticObservable(t *testing.T) {
	mk := func(swap bool) *bytecode.Program {
		b := bytecode.NewBuilder("racy")
		cb := b.Class("Main")
		cb.Static("a", false)
		cb.Static("b", false)
		worker := cb.Method("worker", 0, 0)
		if swap {
			worker.Const(1).PutStatic(cb, "b").Const(1).PutStatic(cb, "a")
		} else {
			worker.Const(1).PutStatic(cb, "a").Const(1).PutStatic(cb, "b")
		}
		worker.Emit(bytecode.Ret)
		main := cb.Method("main", 0, 0)
		main.SpawnM(worker).Emit(bytecode.Pop)
		main.Const(2).PutStatic(cb, "a").Const(2).PutStatic(cb, "b")
		main.GetStatic(cb, "a").Emit(bytecode.Print)
		main.Emit(bytecode.Halt)
		b.Entry(main)
		return b.MustProgram()
	}
	res := check(t, mk(false), mk(true))
	if res.Equivalent {
		t.Fatal("reordered racy static writes certified as equivalent")
	}
	found := false
	for _, f := range res.Report.Findings {
		if strings.Contains(f.Message, "puts:Main.") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no racy-static event in findings:\n%s", res.Report.Text())
	}
}

// TestUnreachableCodeIgnored: divergence confined to unreachable blocks
// does not affect equivalence.
func TestUnreachableCodeIgnored(t *testing.T) {
	p := twoLoops()
	noisy := mutate(t, p, func(code []bytecode.Instr) []bytecode.Instr {
		// Append dead code after the Halt: an unreachable monitor op.
		return append(code,
			bytecode.Instr{Op: bytecode.Null},
			bytecode.Instr{Op: bytecode.MonEnter},
			bytecode.Instr{Op: bytecode.Halt})
	})
	res := check(t, p, noisy)
	if !res.Equivalent {
		t.Fatalf("unreachable divergence refused:\n%s", res.Report.Text())
	}
}

// TestVerifyGate: a program that does not verify is refused outright.
func TestVerifyGate(t *testing.T) {
	p := twoLoops()
	bad := mutate(t, p, func(code []bytecode.Instr) []bytecode.Instr {
		code[1] = bytecode.Instr{Op: bytecode.Add} // stack underflow
		return code
	})
	res := check(t, p, bad)
	if res.Equivalent {
		t.Fatal("unverifiable program certified")
	}
	if res.Report.Findings[0].Analysis != "verify" {
		t.Fatalf("expected verify finding, got %+v", res.Report.Findings[0])
	}
}
