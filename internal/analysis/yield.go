package analysis

// The yield-point audit. The logical thread clock (`nyp` in the paper's
// Fig. 2) counts yield points; preemption deltas are only well-defined if
// every place a thread can spin carries one. In this ISA a taken backward
// jump (target <= pc) and a method prologue are the yield points, so the
// audit proves two things per method:
//
//  1. Every CFG cycle contains a yield carrier — a backward branch, a
//     call (prologue yield), or an explicit YieldOp. The instruction
//     encoding makes a carrier-free cycle impossible (any pc-space cycle
//     must jump backward), so a finding here means the invariant the
//     replay clock depends on has been broken by an ISA or CFG change.
//
//  2. Callback closures never block: a pollevents handler runs nested
//     inside a native frame, where Wait/TimedWait/Sleep/MonEnter would
//     trap at runtime ("blocking inside a native callback") — and would
//     desynchronize the yield-point count between record and replay if it
//     did not. The audit walks every method reachable from a registered
//     handler and flags blocking instructions. An unresolvable handler
//     registration (not a compile-time string) is itself reported, since
//     the closure cannot be audited.

import (
	"sort"

	"dejavu/internal/bytecode"
)

// yieldCarrier reports whether executing pc can tick the yield clock:
// backward branches, calls (callee prologue), and explicit yields.
func yieldCarrier(in bytecode.Instr, pc int) bool {
	switch in.Op {
	case bytecode.Jmp, bytecode.Jz, bytecode.Jnz:
		return int(in.A) <= pc
	case bytecode.Call, bytecode.CallV, bytecode.YieldOp:
		return true
	}
	return false
}

// blockingOp reports whether op can block the executing thread on another
// thread's progress or on time.
func blockingOp(op bytecode.Opcode) bool {
	switch op {
	case bytecode.Wait, bytecode.TimedWait, bytecode.Sleep, bytecode.MonEnter:
		return true
	}
	return false
}

func analyzeYield(mo *model, r *Report) {
	p := mo.prog

	// 1. Cycle audit.
	for id, m := range p.Methods {
		g := mo.cfgs[id]
		for _, comp := range g.SCCs() {
			if len(comp) == 1 && !g.HasSelfLoop(comp[0]) {
				continue
			}
			carrier := false
			lo := -1
			for _, bi := range comp {
				if lo == -1 || g.Blocks[bi].Start < lo {
					lo = g.Blocks[bi].Start
				}
				for pc := g.Blocks[bi].Start; pc < g.Blocks[bi].End && !carrier; pc++ {
					if yieldCarrier(m.Code[pc], pc) {
						carrier = true
					}
				}
			}
			if !carrier {
				r.add(AYield, m, lo,
					"CFG cycle with no yield point: the logical thread clock cannot observe preemption inside this loop")
			}
		}
	}

	// 2. Callback closure audit.
	graph := mo.callGraph()
	for _, s := range mo.nativeSites() {
		if s.name != "pollevents" {
			continue
		}
		reg := p.Methods[s.mid]
		h := mo.resolveHandler(s)
		if h < 0 {
			r.add(AYield, reg, s.pc,
				"pollevents handler is not a compile-time method name; the callback closure cannot be audited for blocking operations")
			continue
		}
		var mids []int
		for mid := range reachFrom(graph, h) {
			mids = append(mids, mid)
		}
		sort.Ints(mids)
		for _, mid := range mids {
			hm := p.Methods[mid]
			for pc, in := range hm.Code {
				if blockingOp(in.Op) {
					r.add(AYield, hm, pc,
						"%s inside the callback closure of handler %s (registered at %s pc=%d): blocking in a native callback traps and skews the yield-point clock",
						in.Op, p.Methods[h].FullName(), reg.FullName(), s.pc)
				}
			}
		}
	}
}
