package analysis

import (
	"errors"

	"dejavu/internal/bytecode"
)

// Native coverage kinds, as reported by Config.NativeCoverage (the VM
// exports its registry in this shape; see vm.NativeCoverage).
const (
	NativeRecorded      = "recorded"      // result captured in the trace
	NativeDeterministic = "deterministic" // pure function of replayed state
	NativeRemote        = "remote"        // remote-reflection channel, bypasses the engine
)

// Config parameterizes Analyze.
type Config struct {
	// Natives is the native registry used for stack-shape verification
	// (normally vm.NativeSignature).
	Natives bytecode.NativeSig
	// NativeCoverage classifies a native for the non-determinism coverage
	// audit (normally vm.NativeCoverage). ok=false means unknown.
	NativeCoverage func(name string) (kind string, ok bool)
	// Analyses selects which analyses run; nil or empty means all five.
	Analyses []string
}

// Analyze runs the selected static analyses over p and returns the report.
// The program is first validated and verified; a verifier rejection is
// itself reported as a single "verify" finding (the other analyses need a
// stack-consistent program to run).
func Analyze(p *bytecode.Program, cfg Config) *Report {
	r := &Report{Program: p.Name, Findings: []Finding{}}
	if err := p.Validate(); err != nil {
		r.add(AVerify, nil, 0, "program rejected: %v", err)
		return r
	}
	facts, err := bytecode.Verify(p, bytecode.VerifyConfig{Natives: cfg.Natives})
	if err != nil {
		f := Finding{Analysis: AVerify, Message: err.Error()}
		var ve *bytecode.VerifyError
		if errors.As(err, &ve) {
			f.Method = ve.Method
			f.PC = ve.PC
			f.Message = ve.Reason
			if m, ok := p.MethodByName(ve.Method); ok && ve.PC >= 0 && ve.PC < len(m.Lines) {
				f.Line = int(m.Lines[ve.PC])
			}
		}
		r.Findings = append(r.Findings, f)
		return r
	}

	want := map[string]bool{}
	sel := cfg.Analyses
	if len(sel) == 0 {
		sel = AllAnalyses
	}
	for _, a := range sel {
		want[a] = true
	}

	mo := buildModel(p, cfg, facts)
	if want[ALocks] {
		analyzeLocks(mo, r)
	}
	if want[ARaces] {
		analyzeRaces(mo, r)
	}
	if want[AYield] {
		analyzeYield(mo, r)
	}
	if want[ACoverage] {
		analyzeCoverage(mo, r)
	}
	if want[ADeadcode] {
		analyzeDeadcode(mo, r)
	}
	r.sortFindings()
	return r
}

// nativeSite is one Native instruction with its resolved argument symbols.
type nativeSite struct {
	mid, pc int
	name    string
	args    []*SymVal
}

// nativeSites walks every method and collects Native call sites in
// deterministic order.
func (mo *model) nativeSites() []nativeSite {
	var sites []nativeSite
	for id := range mo.prog.Methods {
		mo.walkMethod(id, symEvents{onNative: func(pc int, name string, args []*SymVal) {
			sites = append(sites, nativeSite{mid: id, pc: pc, name: name, args: args})
		}})
	}
	return sites
}
