// Hardening tests for the peek endpoint: it guards the same long-lived
// replay session as the debug endpoint, so connection floods, idle peers,
// and panics while servicing a request must never take the server down.
package ptrace

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"dejavu/internal/heap"
)

func startServerCustom(t *testing.T, srv *Server) (*Client, net.Listener) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, l
}

// readRefusal reads the error-response framing (status 1, u32 length,
// message) from a bare connection without writing anything first, so the
// server's close can never race a client write into a RST.
func readRefusal(t *testing.T, addr string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hdr [5]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatalf("reading refusal header: %v", err)
	}
	if hdr[0] != 1 {
		t.Fatalf("refusal status = %d, want 1", hdr[0])
	}
	msg := make([]byte, binary.LittleEndian.Uint32(hdr[1:]))
	if _, err := io.ReadFull(conn, msg); err != nil {
		t.Fatalf("reading refusal message: %v", err)
	}
	return string(msg)
}

func TestPeekConnectionCap(t *testing.T) {
	h := testHeap(t)
	c, l := startServerCustom(t, &Server{H: h, MaxConns: 1})
	// A served peek proves the first connection holds the one slot.
	buf := make([]byte, 8)
	if err := c.Peek(8, buf); err != nil {
		t.Fatal(err)
	}
	if msg := readRefusal(t, l.Addr().String()); !strings.Contains(msg, "connection capacity") {
		t.Fatalf("over-cap connection got %q, want capacity refusal", msg)
	}
	// The in-cap connection keeps working.
	if err := c.Peek(8, buf); err != nil {
		t.Fatalf("in-cap connection broken by refusal: %v", err)
	}
}

func TestPeekIdleConnectionDropped(t *testing.T) {
	h := testHeap(t)
	c, _ := startServerCustom(t, &Server{H: h, IdleTimeout: 50 * time.Millisecond})
	time.Sleep(250 * time.Millisecond)
	buf := make([]byte, 8)
	if err := c.Peek(8, buf); err == nil {
		t.Fatal("idle connection survived past its deadline")
	}
}

type panicRoots struct{}

func (panicRoots) Roots() (heap.Addr, heap.Addr) { panic("roots exploded") }

func TestPeekPanicCostsOnlyTheConnection(t *testing.T) {
	h := testHeap(t)
	srv := &Server{H: h, Roots: panicRoots{}}
	c, l := startServerCustom(t, srv)
	// The panicking request loses this connection...
	if _, _, err := c.Roots(); err == nil {
		t.Fatal("expected transport error after server-side panic")
	}
	// ...but the accept loop survives: a new connection peeks fine.
	c2, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("server dead after recovered panic: %v", err)
	}
	defer c2.Close()
	buf := make([]byte, 8)
	if err := c2.Peek(8, buf); err != nil {
		t.Fatalf("peek on fresh connection after panic: %v", err)
	}
}
