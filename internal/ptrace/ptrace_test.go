package ptrace

import (
	"net"
	"sync"
	"testing"

	"dejavu/internal/heap"
)

func testHeap(t *testing.T) *heap.Heap {
	t.Helper()
	tt := &heap.TypeTable{}
	tt.AddType("T", []bool{false})
	h := heap.New(tt, 8192)
	a, err := h.AllocObject(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.StoreWord(a, 0, 0xdeadbeefcafe)
	return h
}

type fixedRoots struct{ d, t heap.Addr }

func (f fixedRoots) Roots() (heap.Addr, heap.Addr) { return f.d, f.t }

func startServer(t *testing.T, h *heap.Heap, roots RootSource) *Client {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, h, roots)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestLocalPeek(t *testing.T) {
	h := testHeap(t)
	buf := make([]byte, 8)
	if err := (Local{H: h}).Peek(8, buf); err != nil {
		t.Fatal(err)
	}
	if err := (Local{H: h}).Peek(heap.Addr(h.MemSize()), buf); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestTCPPeekMatchesLocal(t *testing.T) {
	h := testHeap(t)
	c := startServer(t, h, fixedRoots{d: 8, t: 16})
	local := make([]byte, 64)
	remote := make([]byte, 64)
	if err := (Local{H: h}).Peek(8, local); err != nil {
		t.Fatal(err)
	}
	if err := c.Peek(8, remote); err != nil {
		t.Fatal(err)
	}
	if string(local) != string(remote) {
		t.Fatal("TCP peek returned different bytes than local")
	}
}

func TestTCPRoots(t *testing.T) {
	h := testHeap(t)
	c := startServer(t, h, fixedRoots{d: 1234, t: 5678})
	d, th, err := c.Roots()
	if err != nil || d != 1234 || th != 5678 {
		t.Fatalf("roots: %d %d %v", d, th, err)
	}
}

func TestTCPRootsWithoutSource(t *testing.T) {
	h := testHeap(t)
	c := startServer(t, h, nil)
	if _, _, err := c.Roots(); err == nil {
		t.Fatal("expected no-root-source error")
	}
	// Connection remains usable.
	buf := make([]byte, 8)
	if err := c.Peek(8, buf); err != nil {
		t.Fatal(err)
	}
}

func TestTCPErrorRecovery(t *testing.T) {
	h := testHeap(t)
	c := startServer(t, h, nil)
	buf := make([]byte, 8)
	if err := c.Peek(1<<30, buf); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
	if err := c.Peek(8, buf); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestTCPOversizePeekRejected(t *testing.T) {
	h := testHeap(t)
	c := startServer(t, h, nil)
	big := make([]byte, 2<<20)
	if err := c.Peek(8, big); err == nil {
		t.Fatal("expected oversize rejection")
	}
}

func TestConcurrentClients(t *testing.T) {
	h := testHeap(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, h, fixedRoots{d: 1, t: 2})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			buf := make([]byte, 8)
			for j := 0; j < 100; j++ {
				if err := c.Peek(8, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCountingWrapper(t *testing.T) {
	h := testHeap(t)
	c := &Counting{Inner: Local{H: h}}
	buf := make([]byte, 16)
	for i := 0; i < 5; i++ {
		if err := c.Peek(8, buf); err != nil {
			t.Fatal(err)
		}
	}
	if c.Peeks != 5 || c.Bytes != 80 {
		t.Fatalf("counts: %d peeks %d bytes", c.Peeks, c.Bytes)
	}
}
