// Multi-session (SessionSource) mode: peeks and root queries must bind to
// a session with an 'A' frame first, and every heap read resolves through
// WithSession — the session's command lock — so a peek can never race a
// kill or a travel re-seed.
package ptrace

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"dejavu/internal/heap"
)

// fakeSessions routes session numbers to fixed heaps under one lock,
// mirroring the registry's WithSession contract.
type fakeSessions struct {
	mu    sync.Mutex
	heaps map[uint64]*heap.Heap
	roots map[uint64]RootSource
	calls int
}

func (s *fakeSessions) WithSession(num uint64, f func(h *heap.Heap, roots RootSource) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.heaps[num]
	if !ok {
		return fmt.Errorf("no session #%d", num)
	}
	s.calls++
	return f(h, s.roots[num])
}

func startSessionServer(t *testing.T, src SessionSource) *Client {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go (&Server{Sessions: src}).Serve(l)
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestSessionAttachPeekAndRoots(t *testing.T) {
	h1, h2 := testHeap(t), testHeap(t)
	a2, err := h2.AllocObject(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	h2.StoreWord(a2, 0, 0x1234)
	src := &fakeSessions{
		heaps: map[uint64]*heap.Heap{1: h1, 2: h2},
		roots: map[uint64]RootSource{1: fixedRoots{d: 8, t: 16}, 2: fixedRoots{d: a2, t: 8}},
	}
	c := startSessionServer(t, src)

	// Peeks before attach are refused with guidance.
	buf := make([]byte, 8)
	if err := c.Peek(8, buf); err == nil || !strings.Contains(err.Error(), "attach") {
		t.Fatalf("unattached peek: %v, want attach guidance", err)
	}

	// Attach to session 1: roots and peeks serve that session's heap.
	if err := c.AttachSession(1); err != nil {
		t.Fatal(err)
	}
	dict, threads, err := c.Roots()
	if err != nil || dict != 8 || threads != 16 {
		t.Fatalf("roots: %d %d %v", dict, threads, err)
	}
	if err := c.Peek(8, buf); err != nil {
		t.Fatalf("peek: %v", err)
	}

	// Re-attach moves the connection to session 2 in place.
	if err := c.AttachSession(2); err != nil {
		t.Fatal(err)
	}
	if dict, _, err = c.Roots(); err != nil || dict != a2 {
		t.Fatalf("roots after re-attach: %d %v", dict, err)
	}

	// Unknown session: refused at attach time, connection intact.
	if err := c.AttachSession(99); err == nil || !strings.Contains(err.Error(), "no session") {
		t.Fatalf("attach 99: %v", err)
	}
	if err := c.Peek(8, buf); err != nil {
		t.Fatalf("connection broken by failed attach: %v", err)
	}

	src.mu.Lock()
	calls := src.calls
	src.mu.Unlock()
	if calls == 0 {
		t.Fatal("no peek resolved through WithSession")
	}
}

func TestSingleSessionModeIgnoresAttach(t *testing.T) {
	// A single-session server (no Sessions source) refuses 'A' frames with
	// a protocol error but keeps serving its live heap.
	h := testHeap(t)
	c := startServer(t, h, fixedRoots{d: 8, t: 16})
	if err := c.AttachSession(1); err == nil || !strings.Contains(err.Error(), "not a multi-session server") {
		t.Fatalf("attach on single-session server: %v", err)
	}
	buf := make([]byte, 8)
	if err := c.Peek(8, buf); err != nil {
		t.Fatalf("peek after refused attach: %v", err)
	}
}
