// Package ptrace provides read-only access to a (possibly remote) VM's
// heap memory — the stand-in for the Unix ptrace facility the paper's
// remote reflection builds on (§3.2).
//
// The essential property is preserved: the application VM executes no code
// to answer a peek. The in-process implementation reads the heap bytes
// directly; the TCP implementation has a tiny server goroutine copy bytes
// out, which stands in for the operating system servicing ptrace — the
// interpreted program itself never runs.
package ptrace

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dejavu/internal/heap"
	"dejavu/internal/obs"
)

// Mem is the remote-memory interface: fill buf from addr.
type Mem interface {
	Peek(addr heap.Addr, buf []byte) error
}

// Local peeks an in-process heap directly.
type Local struct {
	H *heap.Heap
}

// Peek implements Mem.
func (l Local) Peek(addr heap.Addr, buf []byte) error {
	return l.H.ReadBytes(addr, buf)
}

// Counting wraps a Mem and counts operations and bytes, for the remote
// reflection latency experiments.
type Counting struct {
	Inner Mem
	Peeks uint64
	Bytes uint64
}

// Peek implements Mem.
func (c *Counting) Peek(addr heap.Addr, buf []byte) error {
	c.Peeks++
	c.Bytes += uint64(len(buf))
	return c.Inner.Peek(addr, buf)
}

// RootSource publishes the current addresses of the mapped roots (the
// VM_Dictionary and the thread registry). It is the analog of the paper's
// boot-image record: the fixed place a tool learns where reflection
// starts. Reading it executes no interpreted code.
type RootSource interface {
	Roots() (dict, threads heap.Addr)
}

// Wire protocol: request = 'P' | addr u32 | len u32 (peek),
// 'R' | 8 zero bytes (roots), or 'A' | session u64 (attach, multi-session
// servers only). Response = status byte (0 ok, 1 error) | payload
// (requested bytes, two u32 roots, or nothing for attach on ok;
// u32-length + message on error).

// Hardening defaults, mirroring dbgproto: the peek endpoint guards the
// same long-lived replay session.
const (
	DefaultMaxConns     = 8
	DefaultIdleTimeout  = 10 * time.Minute
	DefaultWriteTimeout = 30 * time.Second
)

// Server answers peek and root requests. Connections beyond MaxConns are
// refused with a protocol error; idle or unwritable connections are
// dropped at their deadlines; a panic while servicing a request drops that
// connection only.
type Server struct {
	H     *heap.Heap
	Roots RootSource

	// Live, when set, resolves the heap and root source per request instead
	// of the static H/Roots fields. A journal-backed debugging session
	// replaces its VM wholesale when time travel re-seeds from a durable
	// checkpoint; a server built over the original VM's heap would then
	// peek freed memory. The callback must be safe to call from the serve
	// goroutine — dvserve wraps it in the debug server's command lock.
	Live func() (*heap.Heap, RootSource)

	// Sessions, when set, switches the server into multi-session mode: a
	// connection must first attach ('A' | session u64), and every peek or
	// root request then resolves — and COPIES — the session's heap bytes
	// under that session's command lock, so a concurrent command, travel
	// re-seed, or kill can never leave a request reading a mutating or
	// freed heap. H, Roots, and Live are ignored when Sessions is set.
	Sessions SessionSource

	// Obs, when set, receives peek-endpoint metrics (connections, requests,
	// bytes served, per-request latency). Peeks execute no interpreted
	// code, and neither does metric collection, so observation preserves
	// the §3.2 property.
	Obs *obs.Registry

	MaxConns     int           // concurrent connections (0 = DefaultMaxConns, <0 = unlimited)
	IdleTimeout  time.Duration // per-request read deadline (0 = DefaultIdleTimeout, <0 = none)
	WriteTimeout time.Duration // per-response deadline (0 = DefaultWriteTimeout, <0 = none)

	active   atomic.Int32
	initOnce sync.Once
	m        peekMetrics
}

// peekMetrics holds the peek server's obs series; all nil-safe no-ops
// when Obs is unset.
type peekMetrics struct {
	conns   *obs.Counter   // connections accepted
	refused *obs.Counter   // connections refused at capacity
	peeks   *obs.Counter   // peek requests served
	roots   *obs.Counter   // root requests served
	bytes   *obs.Counter   // heap bytes copied out
	errors  *obs.Counter   // requests answered with an error
	latency *obs.Histogram // per-request service time
}

func (s *Server) metrics() *peekMetrics {
	s.initOnce.Do(func() {
		s.m = peekMetrics{
			conns:   s.Obs.Counter("dv_peek_connections_total"),
			refused: s.Obs.Counter("dv_peek_connections_refused_total"),
			peeks:   s.Obs.Counter("dv_peek_requests_total"),
			roots:   s.Obs.Counter("dv_peek_root_requests_total"),
			bytes:   s.Obs.Counter("dv_peek_bytes_total"),
			errors:  s.Obs.Counter("dv_peek_errors_total"),
			latency: s.Obs.Histogram("dv_peek_request_seconds"),
		}
	})
	return &s.m
}

// SessionSource resolves numeric session IDs for multi-session peek
// serving. The session manager implements it; the interface lives here so
// the protocol layer needs no dependency on session storage.
type SessionSource interface {
	// WithSession runs f with the session's live heap and root source
	// under the session's command lock and the pool's worker budget. All
	// heap reads must happen inside f — the pointers are dead the moment
	// it returns (a travel re-seed or kill may replace or drop the VM).
	WithSession(num uint64, f func(h *heap.Heap, roots RootSource) error) error
}

// live resolves the heap and roots to serve one request against.
func (s *Server) live() (*heap.Heap, RootSource) {
	if s.Live != nil {
		return s.Live()
	}
	return s.H, s.Roots
}

// withLive routes one request's heap access: in multi-session mode through
// the attached session's lock (reads complete inside f), otherwise against
// the static or Live-resolved heap.
func (s *Server) withLive(sid uint64, attached bool, f func(h *heap.Heap, roots RootSource) error) error {
	if s.Sessions != nil {
		if !attached {
			return fmt.Errorf("no session attached (send an attach request first)")
		}
		return s.Sessions.WithSession(sid, f)
	}
	h, roots := s.live()
	return f(h, roots)
}

// Serve answers peek and root requests on l until the listener closes.
// Each connection is served sequentially on its own goroutine. This is the
// compatibility wrapper over Server with default hardening limits.
func Serve(l net.Listener, h *heap.Heap, roots RootSource) {
	(&Server{H: h, Roots: roots}).Serve(l)
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) {
	max := s.MaxConns
	if max == 0 {
		max = DefaultMaxConns
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		m := s.metrics()
		if max > 0 && s.active.Load() >= int32(max) {
			m.refused.Inc()
			// Honor the configured write deadline on the refusal too (this
			// used to hardcode 5s, overriding a <0 "no deadline" setting).
			if write := s.writeLimit(); write > 0 {
				conn.SetWriteDeadline(time.Now().Add(write))
			}
			writeErr(conn, "server at connection capacity")
			conn.Close()
			continue
		}
		s.active.Add(1)
		m.conns.Inc()
		go func() {
			defer s.active.Add(-1)
			s.serveConn(conn)
		}()
	}
}

// writeLimit resolves the effective per-response deadline (0 = default,
// <0 = none).
func (s *Server) writeLimit() time.Duration {
	switch {
	case s.WriteTimeout == 0:
		return DefaultWriteTimeout
	case s.WriteTimeout < 0:
		return 0
	default:
		return s.WriteTimeout
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	// A panic servicing a request costs this connection, not the VM.
	defer func() { recover() }()
	idle := s.IdleTimeout
	if idle == 0 {
		idle = DefaultIdleTimeout
	}
	write := s.writeLimit()
	m := s.metrics()
	// Multi-session mode: the connection's attached session, set by 'A'.
	var sid uint64
	var attached bool
	var hdr [9]byte
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		if write > 0 {
			conn.SetWriteDeadline(time.Now().Add(write))
		}
		start := time.Now()
		switch hdr[0] {
		case 'A':
			num := binary.LittleEndian.Uint64(hdr[1:9])
			if s.Sessions == nil {
				m.errors.Inc()
				if !writeErr(conn, "not a multi-session server") {
					return
				}
				continue
			}
			// Validate the session exists (and survives admission) before
			// binding the connection to it.
			if err := s.Sessions.WithSession(num, func(*heap.Heap, RootSource) error { return nil }); err != nil {
				m.errors.Inc()
				if !writeErr(conn, err.Error()) {
					return
				}
				continue
			}
			sid, attached = num, true
			if _, err := conn.Write([]byte{0}); err != nil {
				return
			}
		case 'R':
			// All root/heap access happens inside withLive: in
			// multi-session mode that is under the session's command lock,
			// so a concurrent kill or travel re-seed can never race the
			// read. Only the network write happens outside.
			var d, t heap.Addr
			err := s.withLive(sid, attached, func(_ *heap.Heap, roots RootSource) error {
				if roots == nil {
					return fmt.Errorf("no root source")
				}
				d, t = roots.Roots()
				return nil
			})
			if err != nil {
				m.errors.Inc()
				if !writeErr(conn, err.Error()) {
					return
				}
				continue
			}
			var resp [9]byte
			binary.LittleEndian.PutUint32(resp[1:5], uint32(d))
			binary.LittleEndian.PutUint32(resp[5:9], uint32(t))
			if _, err := conn.Write(resp[:]); err != nil {
				return
			}
			m.roots.Inc()
			m.latency.ObserveSince(start)
		case 'P':
			addr := heap.Addr(binary.LittleEndian.Uint32(hdr[1:5]))
			n := binary.LittleEndian.Uint32(hdr[5:9])
			if n > 1<<20 {
				m.errors.Inc()
				writeErr(conn, "peek too large")
				return
			}
			buf := make([]byte, n)
			err := s.withLive(sid, attached, func(h *heap.Heap, _ RootSource) error {
				// Copy the bytes out while the lock is held; buf is ours
				// after withLive returns, whatever happens to the VM.
				return h.ReadBytes(addr, buf)
			})
			if err != nil {
				m.errors.Inc()
				if !writeErr(conn, err.Error()) {
					return
				}
				continue
			}
			if _, err := conn.Write([]byte{0}); err != nil {
				return
			}
			if _, err := conn.Write(buf); err != nil {
				return
			}
			m.peeks.Inc()
			m.bytes.Add(uint64(n))
			m.latency.ObserveSince(start)
		default:
			return
		}
	}
}

func writeErr(conn net.Conn, msg string) bool {
	var lenBuf [5]byte
	lenBuf[0] = 1
	binary.LittleEndian.PutUint32(lenBuf[1:], uint32(len(msg)))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		return false
	}
	_, err := conn.Write([]byte(msg))
	return err == nil
}

// Client is a Mem over TCP.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a peek server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close shuts the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Peek implements Mem.
func (c *Client) Peek(addr heap.Addr, buf []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [9]byte
	hdr[0] = 'P'
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(addr))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(buf)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return err
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return err
	}
	if status[0] == 0 {
		_, err := io.ReadFull(c.conn, buf)
		return err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
		return err
	}
	msg := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(c.conn, msg); err != nil {
		return err
	}
	return fmt.Errorf("ptrace: remote peek failed: %s", msg)
}

// AttachSession binds the connection to a session on a multi-session peek
// server; later peeks and root requests resolve that session's live heap.
func (c *Client) AttachSession(num uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [9]byte
	hdr[0] = 'A'
	binary.LittleEndian.PutUint64(hdr[1:9], num)
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return err
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return err
	}
	if status[0] == 0 {
		return nil
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
		return err
	}
	msg := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(c.conn, msg); err != nil {
		return err
	}
	return fmt.Errorf("ptrace: attach failed: %s", msg)
}

// Roots fetches the remote VM's current mapped-root addresses.
func (c *Client) Roots() (dict, threads heap.Addr, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var hdr [9]byte
	hdr[0] = 'R'
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return 0, 0, err
	}
	var resp [1]byte
	if _, err := io.ReadFull(c.conn, resp[:]); err != nil {
		return 0, 0, err
	}
	if resp[0] != 0 {
		var lenBuf [4]byte
		if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
			return 0, 0, err
		}
		msg := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(c.conn, msg); err != nil {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("ptrace: roots failed: %s", msg)
	}
	var body [8]byte
	if _, err := io.ReadFull(c.conn, body[:]); err != nil {
		return 0, 0, err
	}
	return heap.Addr(binary.LittleEndian.Uint32(body[0:4])),
		heap.Addr(binary.LittleEndian.Uint32(body[4:8])), nil
}
