// Regression tests mirroring dbgproto's: the peek server's capacity
// refusal used to hardcode a 5s write deadline instead of honoring the
// configured WriteTimeout (including <0 = no deadline).
package ptrace

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

type deadlineConn struct {
	mu        sync.Mutex
	wrote     bytes.Buffer
	deadlines []time.Time
	closed    chan struct{}
	closeOnce sync.Once
}

func newDeadlineConn() *deadlineConn { return &deadlineConn{closed: make(chan struct{})} }

func (c *deadlineConn) Read(p []byte) (int, error) { <-c.closed; return 0, net.ErrClosed }
func (c *deadlineConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote.Write(p)
}
func (c *deadlineConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}
func (c *deadlineConn) LocalAddr() net.Addr               { return fakeAddr{} }
func (c *deadlineConn) RemoteAddr() net.Addr              { return fakeAddr{} }
func (c *deadlineConn) SetDeadline(t time.Time) error     { return nil }
func (c *deadlineConn) SetReadDeadline(t time.Time) error { return nil }
func (c *deadlineConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadlines = append(c.deadlines, t)
	return nil
}

func (c *deadlineConn) snapshot() (string, []time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wrote.String(), append([]time.Time(nil), c.deadlines...)
}

type fakeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newFakeListener(conns ...net.Conn) *fakeListener {
	l := &fakeListener{conns: make(chan net.Conn, len(conns)), done: make(chan struct{})}
	for _, c := range conns {
		l.conns <- c
	}
	return l
}

func (l *fakeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}
func (l *fakeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}
func (l *fakeListener) Addr() net.Addr { return fakeAddr{} }

func peekRefuseOn(t *testing.T, srv *Server) *deadlineConn {
	t.Helper()
	srv.MaxConns = 1
	held, refused := newDeadlineConn(), newDeadlineConn()
	l := newFakeListener(held, refused)
	t.Cleanup(func() { l.Close(); held.Close() })
	go srv.Serve(l)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if wrote, _ := refused.snapshot(); strings.Contains(wrote, "connection capacity") {
			return refused
		}
		time.Sleep(time.Millisecond)
	}
	wrote, _ := refused.snapshot()
	t.Fatalf("refusal never written; refused conn saw %q", wrote)
	return nil
}

func TestPeekRefusalHonorsConfiguredWriteTimeout(t *testing.T) {
	start := time.Now()
	refused := peekRefuseOn(t, &Server{H: testHeap(t), WriteTimeout: 250 * time.Millisecond})
	_, deadlines := refused.snapshot()
	if len(deadlines) != 1 {
		t.Fatalf("refused conn saw %d write deadlines, want 1", len(deadlines))
	}
	if d := deadlines[0].Sub(start); d <= 0 || d > 2*time.Second {
		t.Fatalf("refusal write deadline %v after start, want ~250ms", d)
	}
}

func TestPeekRefusalHonorsNoDeadline(t *testing.T) {
	refused := peekRefuseOn(t, &Server{H: testHeap(t), WriteTimeout: -1})
	wrote, deadlines := refused.snapshot()
	if len(deadlines) != 0 {
		t.Fatalf("refused conn saw write deadlines %v, want none with WriteTimeout<0", deadlines)
	}
	if !strings.Contains(wrote, "connection capacity") {
		t.Fatalf("refusal body = %q", wrote)
	}
}
