package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"dejavu/internal/baselines"
	"dejavu/internal/bytecode"
	"dejavu/internal/core"
	"dejavu/internal/debugger"
	"dejavu/internal/faults/chaosfs"
	"dejavu/internal/faults/memfs"
	"dejavu/internal/flightrec"
	"dejavu/internal/heap"
	"dejavu/internal/minimize"
	"dejavu/internal/obs"
	"dejavu/internal/opt"
	"dejavu/internal/ptrace"
	"dejavu/internal/remoteref"
	"dejavu/internal/replaycheck"
	"dejavu/internal/sessions"
	"dejavu/internal/tools"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

// benchWorkloads are the programs used by the quantitative experiments.
var benchWorkloads = map[string]func() *bytecode.Program{
	"bank":         func() *bytecode.Program { return workloads.Bank(4, 8, 2000) },
	"prodcons":     func() *bytecode.Program { return workloads.ProdCons(2, 2, 4, 1500) },
	"philosophers": func() *bytecode.Program { return workloads.Philosophers(5, 200) },
	"server":       func() *bytecode.Program { return workloads.Server(3, 300) },
	"sieve":        func() *bytecode.Program { return workloads.Sieve(20000) },
}

// --- E1 ---

func runE1(r *report) error {
	rows := [][]string{}
	distinct := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		o := replaycheck.Options{Seed: seed, PreemptMin: 2, PreemptMax: 10}
		rec, _, err := replaycheck.CheckReplay(workloads.Fig1AB(), o)
		if err != nil {
			return err
		}
		out := strings1(rec.Output)
		distinct[out] = true
		rows = append(rows, []string{fmt.Sprintf("%d", seed), out, "identical"})
	}
	r.table([]string{"timer seed", "printed x,y", "replay"}, rows)
	r.note("distinct outcomes across seeds: %d (schedule-dependent, each replayed exactly)", len(distinct))
	if len(distinct) < 2 {
		return fmt.Errorf("expected schedule dependence")
	}
	return nil
}

func strings1(b []byte) string {
	s := string(b)
	return stringsReplace(s)
}

func stringsReplace(s string) string {
	out := ""
	for _, c := range s {
		if c == '\n' {
			out += ","
		} else {
			out += string(c)
		}
	}
	if len(out) > 0 && out[len(out)-1] == ',' {
		out = out[:len(out)-1]
	}
	return out
}

// --- E2 ---

func runE2(r *report) error {
	rows := [][]string{}
	distinct := map[string]bool{}
	for base := int64(0); base < 8; base++ {
		o := replaycheck.Options{Seed: 5, TimeBase: 1000 + base, TimeStep: 3}
		rec, _, err := replaycheck.CheckReplay(workloads.Fig1CD(), o)
		if err != nil {
			return err
		}
		out := strings1(rec.Output)
		distinct[out] = true
		branch := "wait taken (C)"
		if (1000+base)%2 != 0 {
			branch = "wait skipped (D)"
		}
		rows = append(rows, []string{fmt.Sprintf("%d", 1000+base), branch, out, "identical"})
	}
	r.table([]string{"clock base", "Date() branch", "printed y", "replay"}, rows)
	r.note("distinct outcomes: %d — the wall-clock read steers wait/notify, and replay reproduces both paths", len(distinct))
	if len(distinct) < 2 {
		return fmt.Errorf("expected clock dependence")
	}
	return nil
}

// --- E3 ---

func runE3(r *report) error {
	rows := [][]string{}
	for _, name := range sortedKeys(benchWorkloads) {
		if name == "sieve" {
			continue // single-threaded; covered by E4
		}
		o := replaycheck.Options{Seed: 13}
		rec, rep, err := replaycheck.CheckReplay(benchWorkloads[name](), o)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		recYields := uint64(0)
		for _, t := range rec.VM.Scheduler().Threads() {
			recYields += t.YieldCount
		}
		repYields := uint64(0)
		for _, t := range rep.VM.Scheduler().Threads() {
			repYields += t.YieldCount
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", recYields),
			fmt.Sprintf("%d", repYields),
			fmt.Sprintf("%d", rec.EngStats.InstrYields),
			fmt.Sprintf("%d", rep.EngStats.InstrYields),
			okStr(recYields == repYields),
		})
	}
	r.table([]string{"workload", "rec logical clock", "rep logical clock", "rec instr yields", "rep instr yields", "clocks equal"}, rows)
	r.note("instrumentation yield counts differ by mode (record/replay do different work) yet logical clocks")
	r.note("agree exactly — the liveclock guard excludes instrumentation from the clock (Fig. 2, §2.4).")
	return nil
}

func okStr(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// --- E4 ---

func runE4(r *report) error {
	rows := [][]string{}
	for _, name := range sortedKeys(benchWorkloads) {
		prog := benchWorkloads[name]
		o := replaycheck.Options{Seed: 21, HeapBytes: 1 << 22}

		// Off baseline: identical schedule (same seeded preemption), no
		// recording — what "instrumentation turned off" means here.
		offStart := time.Now()
		offRes, err := replaycheck.RunOff(prog(), o)
		if err != nil || offRes.RunErr != nil {
			return fmt.Errorf("%s off: %v %v", name, err, offRes.RunErr)
		}
		offDur := time.Since(offStart)

		recStart := time.Now()
		rec, err := replaycheck.Record(prog(), o)
		if err != nil || rec.RunErr != nil {
			return fmt.Errorf("%s record: %v %v", name, err, rec.RunErr)
		}
		recDur := time.Since(recStart)

		repStart := time.Now()
		rep, err := replaycheck.Replay(prog(), rec.Trace, o)
		if err != nil || rep.RunErr != nil {
			return fmt.Errorf("%s replay: %v %v", name, err, rep.RunErr)
		}
		repDur := time.Since(repStart)

		// Per-event rates; schedules are identical across the three runs
		// (same seed), so event counts match and rates are comparable.
		offRate := float64(offRes.Events) / offDur.Seconds()
		recRate := float64(rec.Events) / recDur.Seconds()
		repRate := float64(rep.Events) / repDur.Seconds()
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", rec.Events),
			fmt.Sprintf("%.1f", recRate/1e6),
			fmt.Sprintf("%.1f", repRate/1e6),
			fmt.Sprintf("%.1f", offRate/1e6),
			fmt.Sprintf("%.2fx", offRate/recRate),
			fmt.Sprintf("%.2fx", offRate/repRate),
		})
	}
	r.table([]string{"workload", "events", "record Mev/s", "replay Mev/s", "off Mev/s", "record overhead", "replay overhead"}, rows)
	r.note("overhead = off-mode rate / mode rate, at identical schedules (same preemption seed);")
	r.note("DejaVu's record cost is a counter bump and occasional varint per yield point.")
	return nil
}

// --- E5 ---

func runE5(r *report) error {
	rows := [][]string{}
	for _, name := range sortedKeys(benchWorkloads) {
		prog := benchWorkloads[name]
		o := replaycheck.Options{Seed: 21, HeapBytes: 1 << 23}
		rl := &baselines.ReadLogger{}
		crew := baselines.NewCREWLogger()
		sl := &baselines.SwitchLogger{}

		o.TweakVM = func(c *vm.Config) {
			c.MemHook = rl
			c.Observer = &fanout{list: []vm.Observer{c.Observer, sl}}
		}
		rec, err := replaycheck.Record(prog(), o)
		if err != nil || rec.RunErr != nil {
			return fmt.Errorf("%s: %v %v", name, err, rec.RunErr)
		}
		// Second run for CREW so its map sees the same access stream.
		o2 := replaycheck.Options{Seed: 21, HeapBytes: 1 << 23}
		o2.TweakVM = func(c *vm.Config) { c.MemHook = crew }
		if _, err := replaycheck.Record(prog(), o2); err != nil {
			return fmt.Errorf("%s crew: %w", name, err)
		}

		per := func(n int) string {
			return fmt.Sprintf("%d (%.2f)", n, float64(n)*1e3/float64(rec.Events))
		}
		tstats, _ := rec.VM.Engine().TraceStats()
		switchBytes := tstats.BytesByKind[trace.EvSwitch]
		clockBytes := tstats.BytesByKind[trace.EvClock]
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", rec.Events),
			per(len(rec.Trace)),
			fmt.Sprintf("%d/%d", switchBytes, clockBytes),
			per(sl.TraceBytes()),
			per(crew.TraceBytes()),
			per(rl.TraceBytes()),
		})
	}
	r.table([]string{"workload", "events", "DejaVu bytes (/kev)", "sw/clock bytes", "switch-log+ids (/kev)", "InstantReplay CREW (/kev)", "Recap read-log (/kev)"}, rows)
	r.note("bytes (bytes per 1000 events). DejaVu logs only preemptive switches as yield-point deltas")
	r.note("(sw bytes); clock-heavy workloads like server add clock events, which every scheme must log")
	r.note("(paper footnote 7). R&C log every dispatch with thread ids; Instant Replay logs per CREW")
	r.note("operation; Recap logs every read value.")
	return nil
}

type fanout struct{ list []vm.Observer }

func (f *fanout) OnStep(tid, mid, pc int, op bytecode.Opcode) {
	for _, o := range f.list {
		if o != nil {
			o.OnStep(tid, mid, pc, op)
		}
	}
}
func (f *fanout) OnOutput(b []byte) {
	for _, o := range f.list {
		if o != nil {
			o.OnOutput(b)
		}
	}
}
func (f *fanout) OnSwitch(to int) {
	for _, o := range f.list {
		if o != nil {
			o.OnSwitch(to)
		}
	}
}

// --- E6 ---

func runE6(r *report) error {
	// An assembled program carries real line-number tables (the assembler
	// records source lines), so getLineNumberAt returns meaningful values.
	prog := bytecode.MustAssemble(fig3Src)
	m, err := vm.New(prog, vm.Config{})
	if err != nil {
		return err
	}
	for i := 0; i < 5000; i++ {
		done, err := m.Step()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	eventsBefore := m.Events()
	counter := &ptrace.Counting{Inner: ptrace.Local{H: m.Heap()}}
	w := remoteref.NewLocalWorld(m)
	w.Mem = counter

	rows := [][]string{}
	for _, target := range []string{"Main.helper", "Main.main"} {
		rm, err := w.FindMethod(target)
		if err != nil {
			return err
		}
		for _, off := range []int{0, 2, 4} {
			before := counter.Peeks
			line, err := rm.LineNumberAt(off)
			if err != nil {
				return err
			}
			rows = append(rows, []string{target, fmt.Sprintf("%d", off), fmt.Sprintf("%d", line),
				fmt.Sprintf("%d", counter.Peeks-before)})
		}
	}
	r.table([]string{"method", "offset", "line", "peeks"}, rows)
	r.note("application VM events executed during all queries: %d (perturbation-free)", m.Events()-eventsBefore)
	if m.Events() != eventsBefore {
		return fmt.Errorf("reflection perturbed the VM")
	}
	return nil
}

// --- E7 ---

func runE7(r *report) error {
	prog := workloads.Bank(3, 4, 400)
	rec, err := replaycheck.Record(prog, replaycheck.Options{Seed: 7})
	if err != nil || rec.RunErr != nil {
		return fmt.Errorf("record: %v %v", err, rec.RunErr)
	}
	bare, err := replaycheck.Replay(prog, rec.Trace, replaycheck.Options{})
	if err != nil || bare.RunErr != nil {
		return fmt.Errorf("bare: %v %v", err, bare.RunErr)
	}
	bareHeap, bareUsed := replaycheck.HeapDigest(bare.VM)

	ecfg := core.DefaultConfig(core.ModeReplay)
	ecfg.ProgHash = vm.ProgramHash(prog)
	ecfg.TraceIn = rec.Trace
	eng, _ := core.NewEngine(ecfg)
	m, err := vm.New(prog, vm.Config{Engine: eng})
	if err != nil {
		return err
	}
	d := debugger.New(m)
	d.CheckpointEvery = 5000
	if _, err := d.BreakAt("Main.teller", 0); err != nil {
		return err
	}
	stops := 0
	queries := 0
	for {
		reason, err := d.Continue()
		if err != nil {
			return err
		}
		d.StackTrace(0)
		d.ThreadList()
		d.PrintStatic("Main.done")
		queries += 3
		stops++
		if reason == debugger.StopHalted {
			break
		}
	}
	dbgHeap, dbgUsed := replaycheck.HeapDigest(m)
	rows := [][]string{
		{"bare replay", fmt.Sprintf("%d", bare.Events), fmt.Sprintf("%x", bareHeap), fmt.Sprintf("%d", bareUsed)},
		{"debugged replay", fmt.Sprintf("%d", m.Events()), fmt.Sprintf("%x", dbgHeap), fmt.Sprintf("%d", dbgUsed)},
	}
	r.table([]string{"run", "events", "final heap digest", "heap bytes"}, rows)
	r.note("debugger stops: %d, reflective queries: %d; outputs equal: %v; heap images equal: %v",
		stops, queries, string(m.Output()) == string(bare.Output), dbgHeap == bareHeap && dbgUsed == bareUsed)
	if dbgHeap != bareHeap || m.Events() != bare.Events {
		return fmt.Errorf("debugging perturbed the replay")
	}
	return nil
}

// --- E8 ---

func runE8(r *report) error {
	// Build the same job matrix as before — every workload under five
	// seeds, plus random programs — and fan it across the verify pool.
	var jobs []replaycheck.VerifyJob
	const seeds = 5
	for _, name := range workloads.Names() {
		for seed := int64(1); seed <= seeds; seed++ {
			o := replaycheck.Options{Seed: seed, HostRand: seed}
			if name == "sumlines" {
				o.Input = "5\n15\n22\n\n"
			}
			jobs = append(jobs, replaycheck.VerifyJob{Name: name, Prog: workloads.Registry[name], Options: o})
		}
	}
	const randN = 10
	for seed := int64(100); seed < 100+randN; seed++ {
		seed := seed
		jobs = append(jobs, replaycheck.VerifyJob{
			Name:    "random programs",
			Prog:    func() *bytecode.Program { return workloads.RandomProgram(seed) },
			Options: replaycheck.Options{Seed: seed},
		})
	}
	sum := replaycheck.VerifyPool(jobs, verifyWorkers)
	byName := sum.ByName()
	rows := [][]string{}
	for _, name := range append(workloads.Names(), "random programs") {
		c := byName[name]
		rows = append(rows, []string{name, fmt.Sprintf("%d/%d", c[0], c[1])})
	}
	r.table([]string{"workload", "replays identical"}, rows)
	for _, f := range sum.Failures() {
		r.note("diverged: %s seed=%d: %v", f.Name, f.Seed, f.Err)
	}
	r.note("accuracy: %d/%d recorded executions replayed to identical digests, outputs, heaps, and logical clocks (%d workers, %v)",
		sum.Passed, sum.Passed+sum.Failed, sum.Workers, sum.Wall.Round(time.Millisecond))
	if sum.Failed != 0 {
		return fmt.Errorf("replay accuracy %d/%d", sum.Passed, sum.Passed+sum.Failed)
	}
	return nil
}

// --- E9 ---

func runE9(r *report) error {
	prog := func() *bytecode.Program { return workloads.Hashy(6, 12) }
	base := func() replaycheck.Options {
		o := replaycheck.Options{Seed: 3, PreemptMin: 2, PreemptMax: 10}
		o.TweakVM = func(c *vm.Config) { c.StackSlots = 48 }
		return o
	}
	type abl struct {
		name  string
		tweak func(*core.Config)
	}
	cases := []abl{
		{"control (all symmetry on)", nil},
		{"liveclock guard off", func(c *core.Config) { c.LiveClockGuard = false }},
		{"symmetric allocation off", func(c *core.Config) { c.SymmetricAlloc = false }},
		{"eager stack growth off", func(c *core.Config) { c.EagerStackGrow = false }},
	}
	rows := [][]string{}
	for _, c := range cases {
		diverged := "identical"
		detail := ""
		anyDiverged := false
		for seed := int64(1); seed <= 8; seed++ {
			o := base()
			o.Seed = seed
			o.TweakEngine = c.tweak
			_, _, err := replaycheck.CheckReplay(prog(), o)
			if err != nil {
				anyDiverged = true
				detail = strings.ReplaceAll(err.Error(), "\n", " ")
				if len(detail) > 70 {
					detail = detail[:70] + "..."
				}
				break
			}
		}
		if anyDiverged {
			diverged = "DIVERGED"
		}
		rows = append(rows, []string{c.name, diverged, detail})
		if c.tweak == nil && anyDiverged {
			return fmt.Errorf("control diverged: %s", detail)
		}
		if c.tweak != nil && !anyDiverged {
			return fmt.Errorf("ablation %q failed to diverge", c.name)
		}
	}
	r.table([]string{"configuration", "replay outcome", "first failure"}, rows)
	r.note("each symmetry mechanism of §2.4 is load-bearing: disabling any one breaks replay on the")
	r.note("hashy workload (address-based identity hashes make instrumentation allocation program-visible).")
	return nil
}

// --- E10 ---

func runE10(r *report) error {
	prog := workloads.Bank(3, 6, 1500)
	rec, err := replaycheck.Record(prog, replaycheck.Options{Seed: 5})
	if err != nil || rec.RunErr != nil {
		return fmt.Errorf("record: %v %v", err, rec.RunErr)
	}
	rows := [][]string{}
	for _, every := range []uint64{2000, 10000, 50000} {
		ecfg := core.DefaultConfig(core.ModeReplay)
		ecfg.ProgHash = vm.ProgramHash(prog)
		ecfg.TraceIn = rec.Trace
		eng, _ := core.NewEngine(ecfg)
		m, err := vm.New(prog, vm.Config{Engine: eng})
		if err != nil {
			return err
		}
		ck := &baselines.Checkpointer{Every: every}
		snapTime := time.Duration(0)
		for {
			s := time.Now()
			if err := ck.Maybe(m); err != nil {
				return err
			}
			snapTime += time.Since(s)
			done, err := m.Step()
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		end := m.Events()
		// Travel to the middle and back near the end.
		t0 := time.Now()
		resteps1, err := ck.TravelTo(m, end/2)
		if err != nil {
			return err
		}
		resteps2, err := ck.TravelTo(m, end-1000)
		if err != nil {
			return err
		}
		travelDur := time.Since(t0)
		rows = append(rows, []string{
			fmt.Sprintf("%d", every),
			fmt.Sprintf("%d", ck.Count()),
			fmt.Sprintf("%.1f", float64(ck.TotalBytes)/1e6),
			fmt.Sprintf("%s", snapTime.Round(time.Microsecond)),
			fmt.Sprintf("%d", resteps1+resteps2),
			fmt.Sprintf("%s", travelDur.Round(time.Microsecond)),
		})
	}
	r.table([]string{"interval (events)", "checkpoints", "total MB", "snapshot time", "re-steps (2 travels)", "travel time"}, rows)
	r.note("smaller intervals buy faster reverse execution with more snapshot space — the Igor trade-off,")
	r.note("made exact here by deterministic replay (re-execution from a checkpoint cannot diverge).")
	return nil
}

// --- E11 ---

func runE11(r *report) error {
	m, err := vm.New(workloads.Bank(3, 4, 300), vm.Config{})
	if err != nil {
		return err
	}
	for i := 0; i < 20000; i++ {
		if done, err := m.Step(); done || err != nil {
			break
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go ptrace.Serve(l, m.Heap(), m)
	client, err := ptrace.Dial(l.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	const peeks = 20000
	buf := make([]byte, 8)
	bench := func(mem ptrace.Mem) time.Duration {
		start := time.Now()
		for i := 0; i < peeks; i++ {
			mem.Peek(8, buf)
		}
		return time.Since(start)
	}
	localDur := bench(ptrace.Local{H: m.Heap()})
	tcpDur := bench(client)

	// A full reflective stack walk through each channel.
	walk := func(mem ptrace.Mem) (time.Duration, int) {
		w := remoteref.NewLocalWorld(m)
		counter := &ptrace.Counting{Inner: mem}
		w.Mem = counter
		start := time.Now()
		ths, _ := w.Threads()
		for _, t := range ths {
			t.Stack()
		}
		return time.Since(start), int(counter.Peeks)
	}
	lw, lp := walk(ptrace.Local{H: m.Heap()})
	tw, tp := walk(client)
	rows := [][]string{
		{"single peek", fmt.Sprintf("%d ns", localDur.Nanoseconds()/peeks), fmt.Sprintf("%d ns", tcpDur.Nanoseconds()/peeks)},
		{"all-thread stack walk", fmt.Sprintf("%s (%d peeks)", lw.Round(time.Microsecond), lp), fmt.Sprintf("%s (%d peeks)", tw.Round(time.Microsecond), tp)},
	}
	r.table([]string{"operation", "in-process", "TCP (loopback)"}, rows)
	r.note("out-of-process reflection pays one round trip per peek; the paper's GUI protocol batches text,")
	r.note("and both channels leave the application VM untouched.")
	return nil
}

// --- E12 ---

func runE12(r *report) error {
	// Allocation-heavy run with a small heap: many collections during
	// record; replay must reproduce every address. Hashy also prints
	// address-derived hashes, so any address drift is program-visible.
	prog := workloads.Hashy(60, 25)
	o := replaycheck.Options{Seed: 4, HeapBytes: 24 * 1024, PreemptMin: 2, PreemptMax: 12}
	rec, rep, err := replaycheck.CheckReplay(prog, o)
	if err != nil {
		return err
	}
	recHeap, recUsed := replaycheck.HeapDigest(rec.VM)
	repHeap, repUsed := replaycheck.HeapDigest(rep.VM)
	rows := [][]string{
		{"record", fmt.Sprintf("%d", rec.VM.Heap().Collections), fmt.Sprintf("%d", rec.VM.Heap().Grows),
			fmt.Sprintf("%d", recUsed), fmt.Sprintf("%x", recHeap)},
		{"replay", fmt.Sprintf("%d", rep.VM.Heap().Collections), fmt.Sprintf("%d", rep.VM.Heap().Grows),
			fmt.Sprintf("%d", repUsed), fmt.Sprintf("%x", repHeap)},
	}
	r.table([]string{"run", "collections", "grows", "live bytes", "final heap digest"}, rows)
	if rec.VM.Heap().Collections == 0 {
		return fmt.Errorf("no collections happened; shrink the heap")
	}
	if recHeap != repHeap {
		return fmt.Errorf("heap images diverged under GC")
	}
	r.note("copying collections moved every object %d times during record, and replay reproduced the", rec.VM.Heap().Collections)
	r.note("exact same collections and addresses — GC is a deterministic function of the allocation sequence.")
	return nil
}

// fig3Src is the Fig. 3 demonstration program: the assembler records each
// instruction's source line, materialized by the class loader as an int
// array in the VM heap, which LineNumberAt reads remotely.
const fig3Src = `
program fig3
class Main {
  method helper 1 1 {
    load 0
    iconst 2
    mul
    iconst 1
    add
    retv
  }
  method main 0 2 {
    iconst 0
    store 0
  loop:
    load 0
    iconst 50
    cmpge
    jnz out
    load 0
    call Main.helper
    store 1
    load 0
    iconst 1
    add
    store 0
    jmp loop
  out:
    load 1
    print
    halt
  }
}
entry Main.main
`

// --- E13 ---

// runE13 exercises the §3.4 bytecode extension quantitatively: the same
// bytecode debugger runs on a tool VM against a remote application, once
// in-process and once over TCP, and the application executes nothing.
func runE13(r *report) error {
	app := bytecode.MustAssemble(e13Src)
	tool := bytecode.MustAssemble(e13Src)
	tm, _ := tool.MethodByName("Main.tool")
	tool.Entry = tm.ID

	appVM, err := vm.New(app, vm.Config{})
	if err != nil {
		return err
	}
	if err := appVM.Run(); err != nil {
		return err
	}
	appEvents := appVM.Events()

	type row struct {
		channel string
		events  uint64
		dur     time.Duration
		out     string
	}
	var rows []row

	// In-process peeks.
	local, err := vm.New(tool, vm.Config{})
	if err != nil {
		return err
	}
	if err := local.AttachLocalPeer(appVM); err != nil {
		return err
	}
	start := time.Now()
	if err := local.Run(); err != nil {
		return err
	}
	rows = append(rows, row{"in-process", local.Events(), time.Since(start), string(local.Output())})

	// TCP peeks.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go ptrace.Serve(l, appVM.Heap(), appVM)
	client, err := ptrace.Dial(l.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()
	remote, err := vm.New(tool, vm.Config{})
	if err != nil {
		return err
	}
	if err := remote.EnableRemoteReflection(client,
		func() (heap.Addr, heap.Addr, error) { return client.Roots() },
		vm.LayoutHash(app)); err != nil {
		return err
	}
	start = time.Now()
	if err := remote.Run(); err != nil {
		return err
	}
	rows = append(rows, row{"TCP (loopback)", remote.Events(), time.Since(start), string(remote.Output())})

	table := [][]string{}
	for _, rw := range rows {
		table = append(table, []string{rw.channel, fmt.Sprintf("%d", rw.events), rw.dur.Round(time.Microsecond).String()})
	}
	r.table([]string{"peek channel", "tool VM events", "tool run time"}, table)
	if rows[0].out != rows[1].out {
		return fmt.Errorf("tool outputs differ between channels")
	}
	if appVM.Events() != appEvents {
		return fmt.Errorf("application VM executed during inspection")
	}
	r.note("the debugger is bytecode on a tool VM; getf/aload/callv/prints were satisfied by remote")
	r.note("peeks, the outputs match across channels, and the application VM executed 0 events.")
	return nil
}

const e13Src = `
program shared13
class Node {
  field v
  field next ref
  method value 1 1 {
    load 0
    getf 0
    retv
  }
}
class Main {
  static head ref
  method main 0 2 {
    iconst 40
    store 0
    null
    store 1
  b:
    load 0
    jz d
    new Node
    dup
    load 0
    putf 0
    dup
    load 1
    putf 1
    store 1
    load 0
    iconst 1
    sub
    store 0
    jmp b
  d:
    load 1
    puts Main.head
    halt
  }
  method tool 0 2 {
    native "remotedict" 0
    iconst 1
    aload
    getf 2
    getf 0
    store 0
  w:
    load 0
    native "isremote" 1
    jz o
    load 0
    callv "value" 1
    gets Main.head
    pop
    store 1
    load 0
    getf 1
    store 0
    jmp w
  o:
    load 1
    print
    halt
  }
}
entry Main.main
`

// --- E14 ---

// runE14 demonstrates the paper's closing claim — DejaVu as a platform
// for a family of replay-based tools: a lockset race detector and a
// profiler run over deterministic replays, so their findings reproduce
// exactly across analyses of one recorded execution.
func runE14(r *report) error {
	rows := [][]string{}
	for _, tc := range []struct {
		name string
		prog *bytecode.Program
	}{
		{"fig1ab (racy)", workloads.Fig1AB()},
		{"bank (locked)", workloads.Bank(4, 8, 500)},
		{"prodcons (wait/notify)", workloads.ProdCons(2, 2, 4, 200)},
	} {
		o := replaycheck.Options{Seed: 4, PreemptMin: 2, PreemptMax: 10, HeapBytes: 1 << 22}
		rec, err := replaycheck.Record(tc.prog, o)
		if err != nil || rec.RunErr != nil {
			return fmt.Errorf("%s: %v %v", tc.name, err, rec.RunErr)
		}
		analyze := func() (*tools.RaceDetector, *tools.Profiler) {
			rd := tools.NewRaceDetector()
			prof := tools.NewProfiler(tc.prog)
			o2 := replaycheck.Options{HeapBytes: 1 << 22}
			o2.TweakVM = func(c *vm.Config) {
				c.MemHook = rd
				c.SyncHook = rd
				c.Observer = prof
			}
			rep, err := replaycheck.Replay(tc.prog, rec.Trace, o2)
			if err != nil || rep.RunErr != nil {
				panic(fmt.Sprintf("%s: %v %v", tc.name, err, rep.RunErr))
			}
			return rd, prof
		}
		rd1, prof := analyze()
		rd2, _ := analyze()
		det := "identical"
		if len(rd1.Races()) != len(rd2.Races()) {
			det = "NONDETERMINISTIC"
		}
		rows = append(rows, []string{
			tc.name,
			fmt.Sprintf("%d", rd1.Accesses),
			fmt.Sprintf("%d", len(rd1.Races())),
			det,
			fmt.Sprintf("%d", prof.Total),
		})
		if det != "identical" {
			return fmt.Errorf("%s: race findings differ between analyses of one trace", tc.name)
		}
	}
	r.table([]string{"workload", "accesses checked", "races found", "re-analysis", "profiled events"}, rows)
	r.note("the racy Fig. 1 program is flagged, the disciplined workloads are clean, and two analyses")
	r.note("of the same trace agree exactly — heavy dynamic analysis made repeatable by replay.")
	return nil
}

// --- E15 ---

// runE15 quantifies the crash-tolerance layer (no paper analog; rr and
// iReplayer motivate it — see ISSUE 3): what each durability policy costs
// at record time, and how much of an execution survives a crash at each
// point of the journal, with every salvage held to the prefix property.
func runE15(r *report) error {
	// A tight preemption interval keeps the switch stream busy, so the
	// journal has enough entries for the crash sweep to bite mid-stream.
	prog := func() *bytecode.Program { return workloads.Bank(2, 4, 300) }
	o := replaycheck.Options{Seed: 5, HostRand: 5, KeepEvents: 1 << 20,
		PreemptMin: 2, PreemptMax: 9, ChunkBytes: 64}

	// Durability policy cost, against a real file so the fsyncs are real.
	rows := [][]string{}
	for _, p := range []trace.SyncPolicy{trace.SyncNone, trace.SyncChunk, trace.SyncEvent} {
		f, err := os.CreateTemp("", "dvbench-e15-*.dvt")
		if err != nil {
			return err
		}
		po := o
		po.Sync = p
		start := time.Now()
		rec, rerr := replaycheck.RecordTo(prog(), f, po)
		elapsed := time.Since(start)
		st, _ := f.Stat()
		f.Close()
		os.Remove(f.Name())
		if rerr != nil || rec.RunErr != nil {
			return fmt.Errorf("record -sync %v: %v %v", p, rerr, rec.RunErr)
		}
		rows = append(rows, []string{
			fmt.Sprint(p),
			fmt.Sprintf("%d", rec.Events),
			fmt.Sprintf("%d", st.Size()),
			elapsed.Round(time.Microsecond).String(),
		})
	}
	r.table([]string{"sync policy", "events", "trace bytes", "record wall time"}, rows)

	// Crash sweep: cut the journal at fractions of its length, salvage,
	// replay, and check the replayed prefix against the recorded run.
	var buf bytes.Buffer
	ref, err := replaycheck.RecordTo(prog(), &buf, o)
	if err != nil || ref.RunErr != nil {
		return fmt.Errorf("reference record: %v %v", err, ref.RunErr)
	}
	refEvents := ref.Digest.Recent()
	stream := buf.Bytes()
	rows = nil
	for _, pct := range []int{1, 10, 25, 50, 75, 90, 99, 100} {
		cut := len(stream) * pct / 100
		flat, rep, err := trace.Recover(bytes.NewReader(stream[:cut]))
		if err != nil {
			rows = append(rows, []string{fmt.Sprintf("%d%%", pct),
				fmt.Sprintf("%d", cut), "-", "-", "header torn: unsalvageable"})
			continue
		}
		res, err := replaycheck.Replay(prog(), flat, replaycheck.Options{
			KeepEvents:  1 << 20,
			TweakEngine: func(c *core.Config) { c.PartialTrace = !rep.EndEvent },
		})
		if err != nil {
			return fmt.Errorf("cut %d: replay setup: %v", cut, err)
		}
		got := res.Digest.Recent()
		if len(got) > len(refEvents) {
			return fmt.Errorf("cut %d: salvage replayed more events than recorded", cut)
		}
		for i := range got {
			if got[i] != refEvents[i] {
				return fmt.Errorf("cut %d: silent divergence at event %d", cut, i)
			}
		}
		outcome := fmt.Sprintf("partial: exact prefix, stopped at salvage point")
		if res.RunErr == nil {
			outcome = "complete replay"
		}
		rows = append(rows, []string{fmt.Sprintf("%d%%", pct),
			fmt.Sprintf("%d", cut),
			fmt.Sprintf("%d", rep.Events),
			fmt.Sprintf("%d/%d", len(got), len(refEvents)),
			outcome})
	}
	r.table([]string{"crash point", "bytes kept", "trace events salvaged", "events replayed", "outcome"}, rows)
	r.note("every salvage replayed an exact event-by-event prefix of the recorded execution;")
	r.note("a crash costs only the torn tail, never the recording.")
	return nil
}

// --- E16 ---

// runE16 quantifies the segmented-journal layer (ISSUE 4): what durable
// per-segment checkpoints cost as the rotation threshold shrinks, and what
// they buy — replay seeded from the nearest checkpoint instead of from the
// beginning of the recording.
func runE16(r *report) error {
	prog := func() *bytecode.Program { return workloads.Events(400) }
	base := replaycheck.Options{Seed: 5, HostRand: 5, KeepEvents: 1 << 20,
		PreemptMin: 2, PreemptMax: 9, ChunkBytes: 64, HeapBytes: 1 << 17}
	replayOpts := replaycheck.Options{KeepEvents: 1 << 20, HeapBytes: 1 << 17}

	// Checkpoint overhead vs segment size: smaller segments mean more
	// rotation boundaries, each paying a durable VM snapshot.
	rows := [][]string{}
	for _, rotate := range []int{0, 512, 128, 32} {
		fs := memfs.New()
		o := base
		o.RotateEvents = rotate
		start := time.Now()
		rec, err := replaycheck.RecordJournal(prog(), fs, o)
		elapsed := time.Since(start)
		if err != nil || rec.RunErr != nil {
			return fmt.Errorf("record journal (rotate %d): %v %v", rotate, err, rec.RunErr)
		}
		j, err := trace.OpenJournal(fs)
		if err != nil {
			return fmt.Errorf("open journal (rotate %d): %v", rotate, err)
		}
		var segBytes, ckBytes int64
		for _, s := range j.Manifest.Segments {
			segBytes += s.Bytes
		}
		for _, c := range j.Manifest.Checkpoints {
			if data, ok := fs.ReadFile(c.Name); ok {
				ckBytes += int64(len(data))
			}
		}
		label := fmt.Sprintf("%d events", rotate)
		if rotate == 0 {
			label = "none (single segment)"
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d", j.Segments()),
			fmt.Sprintf("%d", len(j.Manifest.Checkpoints)),
			fmt.Sprintf("%d", segBytes),
			fmt.Sprintf("%d", ckBytes),
			elapsed.Round(time.Microsecond).String(),
		})
	}
	r.table([]string{"rotate threshold", "segments", "checkpoints", "trace bytes", "checkpoint bytes", "record wall time"}, rows)
	r.note("checkpoint bytes scale with boundary count (each is a full VM snapshot at the seal);")
	r.note("the trace payload itself is unchanged by rotation.")

	// Recovery cost: replay the same journal from zero and seeded from the
	// last durable checkpoint. The seeded run replays only the final
	// segment suffix, so its cost is O(segment), not O(trace).
	fs := memfs.New()
	o := base
	o.RotateEvents = 128
	rec, err := replaycheck.RecordJournal(prog(), fs, o)
	if err != nil || rec.RunErr != nil {
		return fmt.Errorf("record journal: %v %v", err, rec.RunErr)
	}
	const reps = 5
	bestZero, bestSeed := time.Duration(1<<62), time.Duration(1<<62)
	var zero, seeded *replaycheck.Result
	var info *replaycheck.SeedInfo
	for i := 0; i < reps; i++ {
		start := time.Now()
		z, _, err := replaycheck.ReplayJournal(prog(), fs, replayOpts)
		if d := time.Since(start); d < bestZero {
			bestZero = d
		}
		if err != nil || z.RunErr != nil {
			return fmt.Errorf("from-zero replay: %v %v", err, z.RunErr)
		}
		zero = z
		start = time.Now()
		s, si, err := replaycheck.ReplayJournalFrom(prog(), fs, 1<<62, replayOpts)
		if d := time.Since(start); d < bestSeed {
			bestSeed = d
		}
		if err != nil || s.RunErr != nil {
			return fmt.Errorf("seeded replay: %v %v", err, s.RunErr)
		}
		seeded, info = s, si
	}
	if info.Checkpoint == nil {
		return fmt.Errorf("seeded replay found no checkpoint to seed from")
	}
	if seeded.Events != zero.Events || string(seeded.Output) != string(zero.Output) {
		return fmt.Errorf("seeded replay diverged from from-zero replay")
	}
	r.table([]string{"replay", "starts at event", "events executed", "wall time (best of 5)"}, [][]string{
		{"from zero", "0", fmt.Sprintf("%d", zero.Events), bestZero.Round(time.Microsecond).String()},
		{fmt.Sprintf("seeded (checkpoint %d)", info.Checkpoint.Index),
			fmt.Sprintf("%d", info.VMEvents),
			fmt.Sprintf("%d", zero.Events-info.VMEvents),
			bestSeed.Round(time.Microsecond).String()},
	})
	r.note("both replays land on identical final state; the seeded one executes only the suffix")
	r.note("after its checkpoint — attaching a debugger deep into a long recording costs one segment.")
	return nil
}

// --- E17 ---

// runE17 measures what the observability subsystem (ISSUE 5) costs and
// proves what it may not cost: attaching a metrics registry to record and
// replay must leave the trace bytes and the replay digest bit-identical —
// metrics live outside the logical clock — while the wall-time overhead of
// the host-side atomics stays small.
func runE17(r *report) error {
	prog := func() *bytecode.Program { return workloads.Events(400) }
	base := replaycheck.Options{Seed: 7, HostRand: 7, PreemptMin: 2, PreemptMax: 9, HeapBytes: 1 << 17}
	reg := obs.NewRegistry()
	withObs := base
	withObs.TweakEngine = func(cfg *core.Config) { cfg.Obs = reg }

	const reps = 5
	type phase struct {
		name      string
		off, on   time.Duration
		offD, onD uint64 // digests, compared after the sweep
	}
	var recPhase, repPhase phase
	recPhase.name, repPhase.name = "record", "replay"
	var tracePlain, traceObs []byte
	for i := 0; i < reps; i++ {
		start := time.Now()
		rp, err := replaycheck.Record(prog(), base)
		d := time.Since(start)
		if err != nil || rp.RunErr != nil {
			return fmt.Errorf("record (metrics off): %v %v", err, rp.RunErr)
		}
		if recPhase.off == 0 || d < recPhase.off {
			recPhase.off = d
		}
		tracePlain, recPhase.offD = rp.Trace, rp.Digest.Sum()

		start = time.Now()
		ro, err := replaycheck.Record(prog(), withObs)
		d = time.Since(start)
		if err != nil || ro.RunErr != nil {
			return fmt.Errorf("record (metrics on): %v %v", err, ro.RunErr)
		}
		if recPhase.on == 0 || d < recPhase.on {
			recPhase.on = d
		}
		traceObs, recPhase.onD = ro.Trace, ro.Digest.Sum()

		start = time.Now()
		pp, err := replaycheck.Replay(prog(), tracePlain, base)
		d = time.Since(start)
		if err != nil || pp.RunErr != nil {
			return fmt.Errorf("replay (metrics off): %v %v", err, pp.RunErr)
		}
		if repPhase.off == 0 || d < repPhase.off {
			repPhase.off = d
		}
		repPhase.offD = pp.Digest.Sum()

		start = time.Now()
		po, err := replaycheck.Replay(prog(), traceObs, withObs)
		d = time.Since(start)
		if err != nil || po.RunErr != nil {
			return fmt.Errorf("replay (metrics on): %v %v", err, po.RunErr)
		}
		if repPhase.on == 0 || d < repPhase.on {
			repPhase.on = d
		}
		repPhase.onD = po.Digest.Sum()
	}
	if !bytes.Equal(tracePlain, traceObs) {
		return fmt.Errorf("metrics perturbed the trace: %d vs %d bytes", len(tracePlain), len(traceObs))
	}
	if recPhase.offD != recPhase.onD || repPhase.offD != repPhase.onD {
		return fmt.Errorf("metrics perturbed the execution digest")
	}
	overhead := func(p phase) string {
		if p.off <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", 100*(float64(p.on)-float64(p.off))/float64(p.off))
	}
	rows := [][]string{}
	for _, p := range []phase{recPhase, repPhase} {
		rows = append(rows, []string{p.name,
			p.off.Round(time.Microsecond).String(),
			p.on.Round(time.Microsecond).String(),
			overhead(p),
			"identical"})
	}
	r.table([]string{"phase", "metrics off (best of 5)", "metrics on (best of 5)", "overhead", "trace+digest"}, rows)
	r.note("registry after the sweep: %d yield points, %d switches, %d series total",
		reg.Counter("dv_engine_yield_points_total").Value(),
		reg.Counter("dv_engine_switches_total").Value(),
		len(reg.Snapshot()))
	r.note("observability is perturbation-free by construction: counters are host-side atomics")
	r.note("outside the logical clock, so enabling them cannot move a single replayed event.")
	return nil
}

// --- E19 ---

// runE19 gives the interpreter-speed trajectory its first optimizer
// baseline: Mev/s for certified-optimized vs unoptimized builds across
// the bench matrix, with the replay-identity assertions inline — the
// optimized build must replay its own recording bit for bit and must
// produce the same output bytes as the unoptimized build under the same
// seeded schedule. Results land in BENCH_E19.json so later sessions can
// track the trajectory.
func runE19(r *report) error {
	matrix := []struct {
		name string
		prog func() *bytecode.Program
	}{
		// expr is the optimizer's showcase (naive codegen); sieve and bank
		// are already-tight controls where the win should be near zero.
		{"expr", func() *bytecode.Program { return workloads.Expr(300_000) }},
		{"sieve", benchWorkloads["sieve"]},
		{"bank", benchWorkloads["bank"]},
	}
	type row struct {
		Workload     string  `json:"workload"`
		InstrsBefore int     `json:"instrs_before"`
		InstrsAfter  int     `json:"instrs_after"`
		EventsUnopt  uint64  `json:"events_unopt"`
		EventsOpt    uint64  `json:"events_opt"`
		MevsUnopt    float64 `json:"mevs_unopt"`
		MevsOpt      float64 `json:"mevs_opt"`
		WallSpeedup  float64 `json:"wall_speedup"`
		ReplayDigest string  `json:"replay_digest"`
	}
	const reps = 3
	base := replaycheck.Options{Seed: 9, HostRand: 9, HeapBytes: 1 << 20}
	var out []row
	rows := [][]string{}
	for _, m := range matrix {
		prog := m.prog()
		res, err := opt.Optimize(prog, opt.Options{Natives: vm.NativeSignature})
		if err != nil {
			return fmt.Errorf("%s: optimize: %v", m.name, err)
		}
		if !res.Certified {
			return fmt.Errorf("%s: optimizer refused:\n%s", m.name, res.Report.Text())
		}
		run := func(p *bytecode.Program) (uint64, time.Duration, []byte, error) {
			var best time.Duration
			var events uint64
			var output []byte
			for i := 0; i < reps; i++ {
				start := time.Now()
				rr, err := replaycheck.RunOff(p, base)
				d := time.Since(start)
				if err != nil || rr.RunErr != nil {
					return 0, 0, nil, fmt.Errorf("%v %v", err, rr.RunErr)
				}
				if best == 0 || d < best {
					best = d
				}
				events, output = rr.Events, rr.Output
			}
			return events, best, output, nil
		}
		uev, ut, uout, err := run(prog)
		if err != nil {
			return fmt.Errorf("%s unoptimized: %v", m.name, err)
		}
		oev, ot, oout, err := run(res.Program)
		if err != nil {
			return fmt.Errorf("%s optimized: %v", m.name, err)
		}
		if !bytes.Equal(uout, oout) {
			return fmt.Errorf("%s: output diverged between builds", m.name)
		}
		// The optimized build must still record a trace its replay
		// reproduces bit for bit — the digest assertion is CheckReplay's.
		orec, _, err := replaycheck.CheckReplay(res.Program, base)
		if err != nil {
			return fmt.Errorf("%s: optimized record/replay: %v", m.name, err)
		}
		mevs := func(ev uint64, d time.Duration) float64 {
			if d <= 0 {
				return 0
			}
			return float64(ev) / 1e6 / d.Seconds()
		}
		rw := row{
			Workload:     m.name,
			InstrsBefore: res.InstrsBefore,
			InstrsAfter:  res.InstrsAfter,
			EventsUnopt:  uev,
			EventsOpt:    oev,
			MevsUnopt:    mevs(uev, ut),
			MevsOpt:      mevs(oev, ot),
			WallSpeedup:  float64(ut) / float64(ot),
			ReplayDigest: fmt.Sprintf("%016x", orec.Digest.Sum()),
		}
		out = append(out, rw)
		rows = append(rows, []string{m.name,
			fmt.Sprintf("%d -> %d", rw.InstrsBefore, rw.InstrsAfter),
			fmt.Sprintf("%d -> %d", uev, oev),
			fmt.Sprintf("%.1f", rw.MevsUnopt),
			fmt.Sprintf("%.1f", rw.MevsOpt),
			fmt.Sprintf("%.2fx", rw.WallSpeedup),
			"identical"})
	}
	r.table([]string{"workload", "instrs", "events (unopt -> opt)", "Mev/s unopt", "Mev/s opt", "wall speedup", "replay"}, rows)
	blob, _ := json.MarshalIndent(out, "", "  ")
	if err := os.WriteFile("BENCH_E19.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("write BENCH_E19.json: %v", err)
	}
	r.note("wrote BENCH_E19.json; events drop because optimized builds execute fewer")
	r.note("instructions for the same observable work — the certifier proves the same")
	r.note("yield points, monitors, and output survive, so the schedule is unperturbed.")
	return nil
}

// --- E20 ---

// runE20 quantifies the always-on flight recorder (ISSUE 8): what the
// bounded in-memory ring costs at record time across window sizes versus
// a full on-disk journal and versus recording off — with the digest
// assertion that every mode observes the *same* execution (the ring is a
// passive sink; retention is not perturbation) — plus the schedule
// minimizer's reduction on the Fig. 1 race, the artifact a flushed window
// feeds into. Results land in BENCH_E20.json.
func runE20(r *report) error {
	prog := benchWorkloads["prodcons"]()
	base := replaycheck.Options{Seed: 7, HostRand: 7, HeapBytes: 1 << 22}
	const reps = 3

	timeRun := func(f func() (*replaycheck.Result, error)) (*replaycheck.Result, time.Duration, error) {
		var best time.Duration
		var res *replaycheck.Result
		for i := 0; i < reps; i++ {
			start := time.Now()
			rr, err := f()
			d := time.Since(start)
			if err != nil {
				return nil, 0, err
			}
			if rr.RunErr != nil {
				return nil, 0, rr.RunErr
			}
			if best == 0 || d < best {
				best = d
			}
			res = rr
		}
		return res, best, nil
	}

	type row struct {
		Mode        string  `json:"mode"`
		Window      string  `json:"window"`
		WallMs      float64 `json:"wall_ms"`
		Mevs        float64 `json:"mevs"`
		OverheadPct float64 `json:"overhead_pct"`
		Digest      string  `json:"digest"`
	}
	var overhead []row
	rows := [][]string{}

	off, offT, err := timeRun(func() (*replaycheck.Result, error) { return replaycheck.RunOff(prog, base) })
	if err != nil {
		return fmt.Errorf("off: %v", err)
	}

	jdir, err := os.MkdirTemp("", "e20-journal-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jdir)
	full, fullT, err := timeRun(func() (*replaycheck.Result, error) {
		sub := fmt.Sprintf("r%d", len(overhead))
		os.Mkdir(jdir+"/"+sub, 0o755)
		fs, err := trace.NewDirFS(jdir + "/" + sub)
		if err != nil {
			return nil, err
		}
		return replaycheck.RecordJournal(prog, fs, base)
	})
	if err != nil {
		return fmt.Errorf("full journal: %v", err)
	}
	want := full.Digest.Sum()
	if off.Digest.Sum() != want {
		return fmt.Errorf("recording off and full-journal digests diverge: the journal sink perturbed the run")
	}

	add := func(mode, window string, res *replaycheck.Result, d time.Duration) {
		rw := row{
			Mode: mode, Window: window,
			WallMs:      float64(d.Microseconds()) / 1000,
			Mevs:        float64(res.Events) / 1e6 / d.Seconds(),
			OverheadPct: (float64(d)/float64(offT) - 1) * 100,
			Digest:      fmt.Sprintf("%016x", res.Digest.Sum()),
		}
		overhead = append(overhead, rw)
		rows = append(rows, []string{mode, window,
			fmt.Sprintf("%.1f", rw.WallMs),
			fmt.Sprintf("%.1f", rw.Mevs),
			fmt.Sprintf("%+.1f%%", rw.OverheadPct),
			"identical"})
	}
	add("off", "-", off, offT)
	add("journal", "unbounded", full, fullT)

	var lastRing *flightrec.Ring
	for _, win := range []int{512, 4096, 32768} {
		win := win
		res, d, err := timeRun(func() (*replaycheck.Result, error) {
			ring, err := flightrec.NewRing(vm.ProgramHash(prog), flightrec.Options{WindowEvents: win})
			if err != nil {
				return nil, err
			}
			lastRing = ring
			return replaycheck.RecordSink(prog, ring, base)
		})
		if err != nil {
			return fmt.Errorf("flight %d: %v", win, err)
		}
		if res.Digest.Sum() != want {
			return fmt.Errorf("flight window %d: digest diverged — the ring perturbed the run", win)
		}
		add("flight", fmt.Sprintf("%d ev", win), res, d)
	}
	r.table([]string{"mode", "window", "wall ms", "Mev/s", "overhead vs off", "execution"}, rows)

	// The final ring flushes to a journal that opens, positioned mid-run.
	fdir, err := os.MkdirTemp("", "e20-flush-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(fdir)
	fi, err := lastRing.Flush(fdir+"/window", "bench")
	if err != nil {
		return fmt.Errorf("flush: %v", err)
	}
	ffs, err := trace.NewDirFS(fdir + "/window")
	if err != nil {
		return err
	}
	if _, err := trace.OpenJournal(ffs); err != nil {
		return fmt.Errorf("flushed window does not open: %v", err)
	}
	r.note("flushed 32768-event window: origin %d, %d segment(s), %d bytes, complete=%v",
		fi.Origin, fi.Segments, fi.Bytes, fi.Complete)

	// Schedule minimization on the Fig. 1 race (the E14 tool family's
	// canonical target): ddmin must cut the recorded switches by >= 50%.
	mo := replaycheck.Options{Seed: 4, PreemptMin: 2, PreemptMax: 10, HeapBytes: 1 << 22}
	rec, err := replaycheck.Record(workloads.Fig1AB(), mo)
	if err != nil || rec.RunErr != nil {
		return fmt.Errorf("minimize record: %v %v", err, rec.RunErr)
	}
	res, err := minimize.Run(workloads.Fig1AB(), rec.Trace, minimize.Options{Record: mo})
	if err != nil {
		return fmt.Errorf("minimize: %v", err)
	}
	rep := res.Report
	r.note("minimized the fig1ab %s repro: %d -> %d switch(es), %.0f%% reduction, %d candidates",
		rep.Fault, rep.OriginalSwitches, rep.KeptSwitches, rep.ReductionPct, rep.Candidates)
	if rep.ReductionPct < 50 {
		return fmt.Errorf("minimizer reduced only %.0f%%, want >= 50%%", rep.ReductionPct)
	}

	out := struct {
		Overhead []row           `json:"overhead"`
		Minimize minimize.Report `json:"minimize"`
	}{overhead, rep}
	blob, _ := json.MarshalIndent(out, "", "  ")
	if err := os.WriteFile("BENCH_E20.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("write BENCH_E20.json: %v", err)
	}
	r.note("wrote BENCH_E20.json; identical digests across off/journal/flight prove the ring")
	r.note("is pay-for-retention only — the execution it observes is the one that ran.")
	return nil
}

// --- E21 ---

// runE21 quantifies chaos resilience (ISSUE 9): a pool of sessions is
// driven through time travels that force durable checkpoint re-seeds —
// the storage read path — while an injected EIO fault takes the backing
// store away under a third of the operations. The containment contract
// under measurement: no travel ever crashes the pool (faults become
// structured refusals), every quarantined session is repaired by the
// supervised retry loop without operator action, and after the storm
// every journal still replays bit-identical to its recording digest. The
// identical storm without chaos is the baseline for shed counts and for
// p50/p99 travel latency.
func runE21(r *report) error {
	const (
		pool   = 6
		rounds = 10
	)

	type result struct {
		Scenario    string  `json:"scenario"`
		Sessions    int     `json:"sessions"`
		Survived    int     `json:"survived"`
		Quarantined int     `json:"quarantined_sessions"`
		Recoveries  uint64  `json:"recoveries"`
		Shed        int     `json:"shed_travels"`
		OK          int     `json:"ok_travels"`
		P50Ms       float64 `json:"travel_p50_ms"`
		P99Ms       float64 `json:"travel_p99_ms"`
		Match       int     `json:"digests_match"`
	}

	pct := func(lats []time.Duration, p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		s := append([]time.Duration(nil), lats...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return float64(s[int(p*float64(len(s)-1)+0.5)].Microseconds()) / 1000
	}

	run := func(scenario string, chaotic bool) (*result, error) {
		root, err := os.MkdirTemp("", "dvbench-e21-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)

		// EIO on every op while armed; the storm arms it only around the
		// targeted travels, so each hit is a dead disk under exactly one
		// command. Disarmed, the plan is inert and the pool runs clean.
		st := chaosfs.New(chaosfs.Fault{Kind: chaosfs.EIO})
		st.Disarm()
		cfg := sessions.Config{
			DataRoot:  root,
			RetryBase: 20 * time.Millisecond,
			RetryMax:  100 * time.Millisecond,
			RetrySeed: 21,
		}
		if chaotic {
			cfg.WrapFS = func(_ string, fs trace.FS) trace.FS { return st.Wrap(fs) }
		}
		m, err := sessions.NewManager(cfg)
		if err != nil {
			return nil, err
		}

		// One probe recording discovers the event horizon, then the pool
		// is built fault-free: each session rotates every 2 logged events
		// (a durable checkpoint per segment) and opens positioned at the
		// last event, so traveling near zero and back is always a
		// re-seed from disk — the path the fault window can take away.
		probe, err := m.Create(sessions.CreateRequest{Program: "workload:fig1ab", Seed: 7, RotateEvents: 2})
		if err != nil {
			return nil, fmt.Errorf("probe create: %v", err)
		}
		events := probe.Events
		if err := m.Kill(probe.ID, true); err != nil {
			return nil, err
		}
		ids := make([]string, pool)
		for i := range ids {
			info, err := m.Create(sessions.CreateRequest{
				Program: "workload:fig1ab", Seed: 7,
				RotateEvents: 2, FromEvent: events - 1,
			})
			if err != nil {
				return nil, fmt.Errorf("create %d: %v", i, err)
			}
			ids[i] = info.ID
		}

		res := &result{Scenario: scenario, Sessions: pool}
		var lats []time.Duration
		targets := []uint64{1, events - 1}
		for round := 0; round < rounds; round++ {
			for _, id := range ids {
				// Round 0 is every session's first durable re-seed (its
				// in-memory anchor sits at the far end) — the one command
				// per session guaranteed to touch disk. The storm takes
				// the disk away under all of them at once; after repair
				// the rebuilt debugger serves from memory, so the storm's
				// blast radius is exactly one quarantine per session.
				hit := chaotic && round == 0
				if hit {
					st.Arm()
				}
				t0 := time.Now()
				_, err := m.Travel(id, targets[round%2])
				d := time.Since(t0)
				if hit {
					st.Disarm()
				}
				switch {
				case err == nil:
					res.OK++
					lats = append(lats, d)
				default:
					var rf *sessions.Refusal
					if !errors.As(err, &rf) {
						return nil, fmt.Errorf("travel %s round %d: non-refusal error %v", id, round, err)
					}
					res.Shed++ // structured refusal: the fault was contained
				}
			}
		}

		// Heal the disk and let the supervised repair loop finish its job:
		// every session must come back without operator action.
		st.Disarm()
		deadline := time.Now().Add(30 * time.Second)
		for _, id := range ids {
			for {
				info, err := m.Info(id)
				if err != nil {
					return nil, err
				}
				if info.State == "active" {
					res.Survived++
					res.Recoveries += info.Recoveries
					if info.Recoveries > 0 {
						res.Quarantined++
					}
					break
				}
				if time.Now().After(deadline) {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
		}

		// The acceptance bar: storage faults cost availability windows,
		// never fidelity. Every journal replays to its recording digest.
		for _, id := range ids {
			info, digest, err := m.VerifyReplay(id)
			if err == nil && digest == info.Digest {
				res.Match++
			}
		}
		res.P50Ms, res.P99Ms = pct(lats, 0.50), pct(lats, 0.99)
		return res, nil
	}

	baseline, err := run("fault-free", false)
	if err != nil {
		return err
	}
	chaos, err := run("eio-storm", true)
	if err != nil {
		return err
	}

	rows := make([][]string, 0, 2)
	for _, res := range []*result{baseline, chaos} {
		rows = append(rows, []string{
			res.Scenario, fmt.Sprint(res.Sessions), fmt.Sprint(res.Survived),
			fmt.Sprint(res.Quarantined), fmt.Sprint(res.Recoveries),
			fmt.Sprint(res.Shed), fmt.Sprint(res.OK),
			fmt.Sprintf("%.2f", res.P50Ms), fmt.Sprintf("%.2f", res.P99Ms),
			fmt.Sprintf("%d/%d", res.Match, res.Sessions),
		})
	}
	r.table([]string{"scenario", "sessions", "survived", "quarantined", "recoveries",
		"shed", "ok travels", "p50 ms", "p99 ms", "digests match"}, rows)

	if baseline.Shed != 0 || baseline.Survived != pool || baseline.Match != pool {
		return fmt.Errorf("fault-free baseline not clean: %+v", baseline)
	}
	if chaos.Survived != pool {
		return fmt.Errorf("only %d/%d sessions survived the storm", chaos.Survived, pool)
	}
	if chaos.Quarantined == 0 || chaos.Recoveries == 0 {
		return fmt.Errorf("the storm quarantined nothing (recoveries=%d) — the fault window missed", chaos.Recoveries)
	}
	if chaos.Match != pool {
		return fmt.Errorf("only %d/%d sessions replay to their recording digest after the storm", chaos.Match, pool)
	}

	out := struct {
		Baseline *result `json:"baseline"`
		Chaos    *result `json:"chaos"`
	}{baseline, chaos}
	blob, _ := json.MarshalIndent(out, "", "  ")
	if err := os.WriteFile("BENCH_E21.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("write BENCH_E21.json: %v", err)
	}
	r.note("wrote BENCH_E21.json; %d quarantines all healed by the supervisor and every", chaos.Recoveries)
	r.note("journal still replays bit-identical — faults cost latency and sheds, never fidelity.")
	return nil
}

// --- E22 ---

// runE22 quantifies the token-threaded interpreter fast path (ISSUE 10):
// record-mode Mev/s for the legacy switch loop vs threaded dispatch
// across the bench matrix, with the cross-dispatch identity assertions
// inline — both dispatchers must emit bit-identical trace bytes, produce
// the same output, and replay the same trace to the same digest. Results
// land in BENCH_E22.json so later sessions can track the trajectory.
func runE22(r *report) error {
	type row struct {
		Workload     string  `json:"workload"`
		Events       uint64  `json:"events"`
		MevsLegacy   float64 `json:"mevs_legacy"`
		MevsFast     float64 `json:"mevs_fast"`
		Speedup      float64 `json:"speedup"`
		TraceBytes   int     `json:"trace_bytes"`
		ReplayDigest string  `json:"replay_digest"`
	}
	type doc struct {
		Workloads      []row   `json:"workloads"`
		GeomeanSpeedup float64 `json:"geomean_speedup"`
		DigestsMatch   bool    `json:"digests_match"`
	}
	const reps = 5
	legacy := func(c *vm.Config) { c.Dispatch = vm.DispatchLegacy }
	mevs := func(ev uint64, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(ev) / 1e6 / d.Seconds()
	}
	var out doc
	out.DigestsMatch = true
	rows := [][]string{}
	logSum := 0.0
	for _, name := range sortedKeys(benchWorkloads) {
		prog := benchWorkloads[name]
		o := replaycheck.Options{Seed: 21, HeapBytes: 1 << 20}
		once := func(tweak func(*vm.Config)) (*replaycheck.Result, time.Duration, error) {
			ro := o
			ro.TweakVM = tweak
			rr, err := replaycheck.Record(prog(), ro)
			if err != nil || rr.RunErr != nil {
				return nil, 0, fmt.Errorf("record: %v %v", err, rr.RunErr)
			}
			// RunTime covers VM.Run alone: heap-image allocation and
			// program assembly are identical fixed costs on both sides
			// and would only dilute the dispatcher ratio.
			return rr, rr.RunTime, nil
		}
		// Timed reps run without the digest observer: the per-event
		// observer callback is harness instrumentation, and its fixed cost
		// on both sides dilutes the dispatcher ratio being measured. Reps
		// alternate between the dispatchers so ambient machine noise lands
		// on both sides equally; best-of-N per side.
		legacyBare := func(c *vm.Config) { c.Dispatch = vm.DispatchLegacy; c.Observer = nil }
		bare := func(c *vm.Config) { c.Observer = nil }
		var lt, ft time.Duration
		for i := 0; i < reps; i++ {
			_, d, err := once(legacyBare)
			if err != nil {
				return fmt.Errorf("%s legacy: %v", name, err)
			}
			if lt == 0 || d < lt {
				lt = d
			}
			_, d, err = once(bare)
			if err != nil {
				return fmt.Errorf("%s fast: %v", name, err)
			}
			if ft == 0 || d < ft {
				ft = d
			}
		}
		// Identity runs keep the observer: they feed the cross-dispatch
		// trace/output/digest assertions and are not timed.
		lres, _, err := once(legacy)
		if err != nil {
			return fmt.Errorf("%s legacy: %v", name, err)
		}
		fres, _, err := once(nil)
		if err != nil {
			return fmt.Errorf("%s fast: %v", name, err)
		}
		// Identity assertions: same events, same trace bytes, same
		// output, and the shared trace must replay to the same digest
		// under both dispatchers.
		if lres.Events != fres.Events {
			return fmt.Errorf("%s: event counts diverged (%d vs %d)", name, lres.Events, fres.Events)
		}
		if !bytes.Equal(lres.Trace, fres.Trace) {
			return fmt.Errorf("%s: trace bytes diverged between dispatchers", name)
		}
		if !bytes.Equal(lres.Output, fres.Output) {
			return fmt.Errorf("%s: output diverged between dispatchers", name)
		}
		ro := o
		ro.TweakVM = legacy
		lrep, err := replaycheck.Replay(prog(), fres.Trace, ro)
		if err != nil || lrep.RunErr != nil {
			return fmt.Errorf("%s legacy replay: %v %v", name, err, lrep.RunErr)
		}
		frep, err := replaycheck.Replay(prog(), fres.Trace, o)
		if err != nil || frep.RunErr != nil {
			return fmt.Errorf("%s fast replay: %v %v", name, err, frep.RunErr)
		}
		if lrep.Digest.Sum() != frep.Digest.Sum() || lrep.Digest.Sum() != lres.Digest.Sum() {
			return fmt.Errorf("%s: replay digests diverged between dispatchers", name)
		}
		speedup := float64(lt) / float64(ft)
		logSum += math.Log(speedup)
		rw := row{
			Workload:     name,
			Events:       fres.Events,
			MevsLegacy:   mevs(lres.Events, lt),
			MevsFast:     mevs(fres.Events, ft),
			Speedup:      speedup,
			TraceBytes:   len(fres.Trace),
			ReplayDigest: fmt.Sprintf("%016x", frep.Digest.Sum()),
		}
		out.Workloads = append(out.Workloads, rw)
		rows = append(rows, []string{name,
			fmt.Sprintf("%d", rw.Events),
			fmt.Sprintf("%.1f", rw.MevsLegacy),
			fmt.Sprintf("%.1f", rw.MevsFast),
			fmt.Sprintf("%.2fx", rw.Speedup),
			"identical"})
	}
	out.GeomeanSpeedup = math.Exp(logSum / float64(len(out.Workloads)))
	r.table([]string{"workload", "events", "Mev/s legacy", "Mev/s threaded", "speedup", "trace+digest"}, rows)
	blob, _ := json.MarshalIndent(out, "", "  ")
	if err := os.WriteFile("BENCH_E22.json", append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("write BENCH_E22.json: %v", err)
	}
	r.note("wrote BENCH_E22.json; geomean speedup %.2fx. The threaded dispatcher emits", out.GeomeanSpeedup)
	r.note("bit-identical trace bytes and replays to the same digest as the legacy switch,")
	r.note("so recordings made by either loop are interchangeable.")
	return nil
}
