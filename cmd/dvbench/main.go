// Command dvbench regenerates the evaluation tables E1–E12 indexed in
// DESIGN.md. The paper itself publishes no quantitative tables (its
// figures are code and architecture illustrations), so each experiment
// either reproduces a figure's demonstrated behavior as a checked,
// executable artifact, or quantifies an efficiency claim against the
// related-work baselines of §5.
//
// usage: dvbench [-e E4] [-e E5] ...   (default: all)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func(*report) error
}

var experiments = []experiment{
	{"E1", "Fig. 1 A/B — schedule-dependent outcomes, replayed exactly", runE1},
	{"E2", "Fig. 1 C/D — wall-clock-dependent control flow, replayed exactly", runE2},
	{"E3", "Fig. 2 — symmetric instrumentation and logical clocks", runE3},
	{"E4", "record/replay runtime overhead", runE4},
	{"E5", "trace size vs related-work schemes", runE5},
	{"E6", "Fig. 3 — remote reflection line-number query", runE6},
	{"E7", "Fig. 4 — perturbation-free debugging", runE7},
	{"E8", "replay accuracy across seeds and workloads", runE8},
	{"E9", "symmetry ablations", runE9},
	{"E10", "Igor-style checkpointing and time travel", runE10},
	{"E11", "remote reflection peek latency (local vs TCP)", runE11},
	{"E12", "GC determinism under replay", runE12},
	{"E13", "Fig. 3/§3.4 — the tool VM's extended bytecodes", runE13},
	{"E14", "replay-based tools: deterministic race detection and profiling", runE14},
	{"E15", "crash tolerance: durability policy cost and torn-journal salvage", runE15},
	{"E16", "segmented journals: checkpoint overhead and seeded-recovery speedup", runE16},
	{"E17", "observability overhead: metrics on vs off, bit-identical replay", runE17},
	{"E19", "certified optimizer: Mev/s optimized vs unoptimized, replay intact", runE19},
	{"E20", "flight recorder: ring overhead vs window size, flush integrity, ddmin reduction", runE20},
	{"E21", "chaos resilience: quarantine, supervised recovery, and travel latency under storage faults", runE21},
	{"E22", "interpreter fast path: threaded dispatch Mev/s vs legacy switch, cross-dispatch identity", runE22},
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, strings.ToUpper(v)); return nil }

// verifyWorkers sizes the E8 verification pool (0 = GOMAXPROCS).
var verifyWorkers int

func main() {
	var only multiFlag
	flag.Var(&only, "e", "experiment id to run (repeatable; default all)")
	flag.IntVar(&verifyWorkers, "workers", 0, "parallel workers for replay verification (E8); 0 = GOMAXPROCS")
	flag.Parse()
	sel := map[string]bool{}
	for _, id := range only {
		sel[id] = true
	}
	r := &report{out: os.Stdout}
	failures := 0
	for _, ex := range experiments {
		if len(sel) > 0 && !sel[ex.id] {
			continue
		}
		r.section(ex.id, ex.title)
		if err := ex.run(r); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", ex.id, err)
			failures++
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// report renders aligned tables.
type report struct {
	out *os.File
}

func (r *report) section(id, title string) {
	fmt.Fprintf(r.out, "\n## %s: %s\n\n", id, title)
}

func (r *report) note(format string, args ...any) {
	fmt.Fprintf(r.out, format+"\n", args...)
}

func (r *report) table(header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(r.out, "  "+strings.Join(parts, "  "))
	}
	line(header)
	dashes := make([]string, len(header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	line(dashes)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintln(r.out)
}

func sortedKeys[V any](m map[string]V) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
