// Command dvserve replays recorded executions under debugger control and
// serves the paper's multi-process architecture (§3, §4) over TCP:
//
//   - a debug endpoint (dbgproto) that front ends like dvdbg connect to
//   - a peek endpoint (ptrace) that serves raw memory reads for
//     out-of-process remote reflection
//   - an optional HTTP endpoint exposing Prometheus series at /metrics
//     and a liveness/position report at /healthz — sampled outside the
//     logical clock, so scraping never perturbs any replay
//
// Single-session usage (one process, one debug session):
//
//	dvserve -t trace.dvt -listen :4455 -peek :4456 <prog>
//
// The -t argument accepts a flat (DVT2) or streaming (DVS1) trace file, or
// a segmented journal directory — the latter opens a journal session that
// seeds from the nearest durable checkpoint (-from-event picks the initial
// position) and re-seeds across segments during time travel.
//
// Multi-tenant usage (one process, many sessions):
//
//	dvserve -data-root /var/lib/dejavu -http :8080 -listen :4455 -peek :4456
//
// With -data-root, dvserve becomes a session-manager platform: sessions
// are created, traveled, verified, and killed over the HTTP/JSON control
// plane (/v1/sessions...), each with its own journal under the data root,
// its own command lock, and a share of a bounded worker budget (-workers).
// The debug and peek listeners stay up but become per-session attachable
// (dbgproto `attach <id>`, ptrace 'A' request). Admission control refuses
// over-capacity creates with structured reasons; /metrics exports the
// per-pool series (active sessions, admissions, rejections, re-seeds,
// worker occupancy).
//
// All listeners are bound before any of them starts serving: a bind
// failure on any endpoint aborts startup with nothing half-started.
//
// SIGINT/SIGTERM shut the server down gracefully. Single-session mode
// checkpoints to -exit-save so `dvserve -restore` resumes. Multi-tenant
// mode first stops admissions, then writes an -exit-save checkpoint into
// every live session's directory under that session's lock — no checkpoint
// is ever half a command, even when many sessions exit together — and only
// then closes the listeners.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dejavu/internal/cli"
	"dejavu/internal/core"
	"dejavu/internal/dbgproto"
	"dejavu/internal/debugger"
	"dejavu/internal/faults/chaosfs"
	"dejavu/internal/heap"
	"dejavu/internal/obs"
	"dejavu/internal/ptrace"
	"dejavu/internal/sessions"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
)

type serveConfig struct {
	prog       string
	traceIn    string
	listen     string
	peek       string
	metrics    string
	checkpoint uint64
	fromEvent  uint64
	restore    string
	exitSave   string

	// Multi-tenant mode (enabled by -data-root).
	dataRoot        string
	httpAddr        string
	maxSessions     int
	maxPerTenant    int
	workers         int
	admitTimeout    time.Duration
	retain          time.Duration
	maxSessionBytes int64

	// Fault containment and backpressure.
	chaos            string
	diskLow          int64
	diskCritical     int64
	tenantRate       float64
	tenantBurst      int
	breakerThreshold int
	breakerCooldown  time.Duration
	retryBase        time.Duration
	retryMax         time.Duration
}

func main() {
	var c serveConfig
	flag.StringVar(&c.traceIn, "t", "trace.dvt", "trace input: a .dvt/.dvs file or a segmented journal directory (single-session mode)")
	flag.StringVar(&c.listen, "listen", "127.0.0.1:4455", "debug protocol address")
	flag.StringVar(&c.peek, "peek", "127.0.0.1:4456", "ptrace peek address (empty to disable)")
	flag.StringVar(&c.metrics, "metrics", "", "HTTP observability address serving /metrics and /healthz (empty to disable)")
	flag.Uint64Var(&c.checkpoint, "checkpoint", 10000, "instructions per time-travel checkpoint (0 disables)")
	flag.Uint64Var(&c.fromEvent, "from-event", 0, "initial replay position; journal traces seed from the nearest durable checkpoint")
	flag.StringVar(&c.restore, "restore", "", "resume from a checkpoint file (written by the debugger's save command)")
	flag.StringVar(&c.exitSave, "exit-save", "", "on SIGINT/SIGTERM, write a checkpoint before exiting: a file path (single-session), or a file name written into every live session's directory (multi-tenant)")
	flag.StringVar(&c.dataRoot, "data-root", "", "session storage root; enables the multi-tenant session manager")
	flag.StringVar(&c.httpAddr, "http", "", "HTTP control-plane address (/v1/sessions, /metrics, /healthz); required with -data-root unless -metrics is set")
	flag.IntVar(&c.maxSessions, "max-sessions", 0, "pool-wide session cap (0 = 128)")
	flag.IntVar(&c.maxPerTenant, "max-per-tenant", 0, "per-tenant session cap (0 = 16, -1 = unlimited)")
	flag.IntVar(&c.workers, "workers", 0, "concurrent command budget shared by all sessions (0 = 8)")
	flag.DurationVar(&c.admitTimeout, "admit-timeout", 0, "max wait for a worker slot before a busy refusal (0 = 5s)")
	flag.DurationVar(&c.retain, "retain", 0, "retention age for killed/orphaned session storage; a periodic sweep removes older directories (0 disables)")
	flag.Int64Var(&c.maxSessionBytes, "max-session-bytes", 0, "per-session journal byte quota at record time; exceeding it refuses the create with 413 (0 = unlimited)")
	flag.StringVar(&c.chaos, "chaos", "", "TEST HOOK: inject storage faults into every session's journal I/O; spec like 'enospc:after=200,count=50;slow:latency=1ms' (kinds: enospc, eio, fsync, torn-rename, slow)")
	flag.Int64Var(&c.diskLow, "disk-low", 0, "low free-space watermark in bytes: below it new recordings are refused with 503 (0 disables)")
	flag.Int64Var(&c.diskCritical, "disk-critical", 0, "critical free-space watermark in bytes: below it ingest is refused too (0 disables)")
	flag.Float64Var(&c.tenantRate, "tenant-rate", 0, "per-tenant create/ingest rate limit in requests/second (0 disables)")
	flag.IntVar(&c.tenantBurst, "tenant-burst", 0, "per-tenant rate-limit burst (0 = max(1, ceil(rate)))")
	flag.IntVar(&c.breakerThreshold, "breaker-threshold", 0, "consecutive replay stalls before a session's exec circuit breaker opens (0 = 3, -1 disables)")
	flag.DurationVar(&c.breakerCooldown, "breaker-cooldown", 0, "open interval before a tripped breaker half-opens (0 = 5s)")
	flag.DurationVar(&c.retryBase, "retry-base", 0, "degraded-session repair backoff base (0 = 200ms)")
	flag.DurationVar(&c.retryMax, "retry-max", 0, "degraded-session repair backoff cap (0 = 5s)")
	flag.Parse()
	if c.dataRoot != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: dvserve -data-root DIR -http ADDR [flags]   (programs are chosen per session; no positional args)")
			os.Exit(2)
		}
		if c.httpAddr == "" {
			c.httpAddr = c.metrics
		}
		if c.httpAddr == "" {
			fmt.Fprintln(os.Stderr, "dvserve: -data-root requires -http (the session control plane)")
			os.Exit(2)
		}
		if err := runMulti(c); err != nil {
			fmt.Fprintln(os.Stderr, "dvserve:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvserve [flags] <prog>")
		os.Exit(2)
	}
	c.prog = flag.Arg(0)
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

// runMulti boots the multi-tenant session-manager platform: session
// registry over -data-root, HTTP control plane, and per-session attachable
// debug/peek endpoints.
func runMulti(c serveConfig) error {
	reg := obs.NewRegistry()
	cfg := sessions.Config{
		DataRoot:          c.dataRoot,
		MaxSessions:       c.maxSessions,
		MaxPerTenant:      c.maxPerTenant,
		Workers:           c.workers,
		AdmitTimeout:      c.admitTimeout,
		CheckpointEvery:   c.checkpoint,
		Obs:               reg,
		MaxSessionBytes:   c.maxSessionBytes,
		DiskLowBytes:      c.diskLow,
		DiskCriticalBytes: c.diskCritical,
		TenantRatePerSec:  c.tenantRate,
		TenantBurst:       c.tenantBurst,
		BreakerThreshold:  c.breakerThreshold,
		BreakerCooldown:   c.breakerCooldown,
		RetryBase:         c.retryBase,
		RetryMax:          c.retryMax,
	}
	if c.chaos != "" {
		st, err := chaosfs.Parse(c.chaos)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dvserve: CHAOS ACTIVE: injecting %s into all session journal I/O\n", st)
		cfg.WrapFS = func(_ string, fs trace.FS) trace.FS { return st.Wrap(fs) }
	}
	mgr, err := sessions.NewManager(cfg)
	if err != nil {
		return err
	}
	if c.retain > 0 {
		// Retention sweep: killed-and-condemned session directories, crash
		// leftovers, and orphaned flush temp dirs age out. The sweep runs a
		// few times per retention period and skips itself entirely while any
		// flight flush is writing.
		interval := c.retain / 4
		if interval < time.Second {
			interval = time.Second
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for range t.C {
				if n := mgr.GC(c.retain); n > 0 {
					fmt.Fprintf(os.Stderr, "dvserve: retention sweep removed %d director(ies)\n", n)
				}
			}
		}()
	}
	if n := len(mgr.List()); n > 0 {
		fmt.Fprintf(os.Stderr, "data root %s: %d cold session(s) registered\n", c.dataRoot, n)
	}

	// Bind everything before serving anything (same invariant as
	// single-session mode: no half-started server).
	var listeners []net.Listener
	closeAll := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	bind := func(addr string) (net.Listener, error) {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			closeAll()
			return nil, err
		}
		listeners = append(listeners, l)
		return l, nil
	}
	var pl net.Listener
	if c.peek != "" {
		if pl, err = bind(c.peek); err != nil {
			return err
		}
	}
	dl, err := bind(c.listen)
	if err != nil {
		return err
	}
	hl, err := bind(c.httpAddr)
	if err != nil {
		return err
	}
	defer closeAll()

	// Connection caps scale with the pool: every session may hold a debug
	// and a peek connection at once.
	maxConns := mgr.MaxSessions() * 2
	srv := &dbgproto.Server{Resolver: mgr, Obs: reg, MaxConns: maxConns}
	if pl != nil {
		ps := &ptrace.Server{Sessions: mgr, Obs: reg, MaxConns: maxConns}
		go ps.Serve(pl)
		fmt.Fprintf(os.Stderr, "peek endpoint on %s (multi-session: attach first)\n", pl.Addr())
	}
	mux := http.NewServeMux()
	mgr.Routes(mux)
	mux.HandleFunc("POST /v1/ingest", ingestHandler(c.dataRoot, reg, mgr.AdmitIngest))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		counts := map[string]int{}
		for _, in := range mgr.List() {
			counts[in.State]++
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"alive":        true,
			"multi_tenant": true,
			"draining":     mgr.Draining(),
			"sessions":     counts,
		})
	})
	go (&http.Server{Handler: mux}).Serve(hl)
	fmt.Fprintf(os.Stderr, "control plane on http://%s/v1/sessions (metrics at /metrics)\n", hl.Addr())
	fmt.Fprintf(os.Stderr, "debug endpoint on %s — connect with: dvdbg -connect %s -session <id>\n", dl.Addr(), dl.Addr())

	// Graceful shutdown: stop admissions first, checkpoint every live
	// session under its own lock, then close listeners — a fleet of
	// sessions exiting together never tears a checkpoint.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "dvserve: %v: draining %d session(s)\n", sig, len(mgr.List()))
		saved := mgr.Drain(c.exitSave)
		if c.exitSave != "" {
			fmt.Fprintf(os.Stderr, "dvserve: checkpointed %d session(s) to %s\n", len(saved), c.exitSave)
		}
		closeAll()
	}()

	srv.Serve(dl)
	return nil
}

func run(c serveConfig) error {
	prog, err := cli.LoadProgram(c.prog)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	// The trace argument selects the session shape: a directory is a
	// segmented journal (travel re-seeds across segments, replacing the VM
	// wholesale), a file is a flat single-debugger session.
	var session *debugger.JournalSession
	var d *debugger.Debugger
	if st, serr := os.Stat(c.traceIn); serr == nil && st.IsDir() {
		if c.restore != "" {
			return fmt.Errorf("-restore does not apply to a journal directory; use -from-event to position the session")
		}
		fs, err := trace.NewDirFS(c.traceIn)
		if err != nil {
			return err
		}
		if session, err = debugger.OpenJournalSessionObs(prog, fs, c.fromEvent, reg); err != nil {
			return err
		}
		session.CheckpointEvery = c.checkpoint
		session.D.CheckpointEvery = c.checkpoint
		j := session.Journal()
		state := "complete"
		if !j.Complete() {
			state = "crash-cut (partial-trace mode)"
		}
		fmt.Fprintf(os.Stderr, "journal %s: %s, session at event %d\n", c.traceIn, state, session.D.VM.Events())
	} else {
		traceBytes, err := cli.ReadTraceFile(c.traceIn)
		if err != nil {
			return err
		}
		eng, _, err := cli.BuildEngine(prog, cli.EngineFlags{Mode: core.ModeReplay, TraceIn: traceBytes, Obs: reg})
		if err != nil {
			return err
		}
		m, err := vm.New(prog, vm.Config{Engine: eng, Stdout: os.Stdout})
		if err != nil {
			return err
		}
		if c.restore != "" {
			blob, err := os.ReadFile(c.restore)
			if err != nil {
				return err
			}
			if err := m.RestoreBytes(blob); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "resumed from %s at event %d\n", c.restore, m.Events())
		}
		d = debugger.New(m)
		d.CheckpointEvery = c.checkpoint
		if c.fromEvent > 0 {
			if err := d.TravelTo(c.fromEvent); err != nil {
				return err
			}
		}
	}

	srv := &dbgproto.Server{D: d, Session: session, Obs: reg}
	// Every endpoint resolves the CURRENT VM: a journal session replaces
	// its VM wholesale when travel re-seeds from a durable checkpoint, so
	// caching the heap or debugger at startup would serve freed state.
	curVM := func() *vm.VM {
		if session != nil {
			return session.D.VM
		}
		return d.VM
	}
	curDebugger := func() *debugger.Debugger {
		if session != nil {
			return session.D
		}
		return d
	}

	// Bind every listener before any of them starts serving. Binding and
	// serving used to interleave, so a late bind failure (debug port taken)
	// left the peek endpoint live on a server that then exited — clients
	// could connect to a half-started server. Now a failure on any bind
	// closes the already-bound listeners and nothing ever accepts.
	var listeners []net.Listener
	closeAll := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	var pl net.Listener
	if c.peek != "" {
		if pl, err = net.Listen("tcp", c.peek); err != nil {
			return err
		}
		listeners = append(listeners, pl)
	}
	dl, err := net.Listen("tcp", c.listen)
	if err != nil {
		closeAll()
		return err
	}
	listeners = append(listeners, dl)
	var ml net.Listener
	if c.metrics != "" {
		if ml, err = net.Listen("tcp", c.metrics); err != nil {
			closeAll()
			return err
		}
		listeners = append(listeners, ml)
	}
	defer closeAll()

	if pl != nil {
		ps := &ptrace.Server{Obs: reg}
		if session != nil {
			// Resolve the live heap under the command lock: the session VM
			// must not be mid-command (or mid-re-seed) when captured.
			ps.Live = func() (*heap.Heap, ptrace.RootSource) {
				var h *heap.Heap
				var r ptrace.RootSource
				srv.Locked(func() {
					cur := curVM()
					h, r = cur.Heap(), cur
				})
				return h, r
			}
		} else {
			ps.H, ps.Roots = d.VM.Heap(), d.VM
		}
		go ps.Serve(pl)
		fmt.Fprintf(os.Stderr, "peek endpoint on %s\n", pl.Addr())
	}
	if ml != nil {
		go (&http.Server{Handler: obsMux(srv, reg, curVM, curDebugger, session != nil)}).Serve(ml)
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/metrics\n", ml.Addr())
	}
	fmt.Fprintf(os.Stderr, "debug endpoint on %s — connect with: dvdbg -connect %s\n", dl.Addr(), dl.Addr())

	// Graceful shutdown: on a signal, first checkpoint the session (under
	// the command lock, so the VM is between commands), then close every
	// listener — Serve returns, clients get EOF rather than a reset, and
	// run() can't exit before the checkpoint is on disk.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "dvserve: %v: shutting down\n", sig)
		if c.exitSave != "" {
			srv.Locked(func() { saveCheckpoint(curVM(), c.exitSave) })
		}
		closeAll()
	}()

	srv.Serve(dl)
	return nil
}

// healthReport is the /healthz body: liveness plus the replay position, all
// read under the command lock so the numbers are mutually consistent.
type healthReport struct {
	Alive         bool   `json:"alive"`
	Journal       bool   `json:"journal"`
	Events        uint64 `json:"events"`
	Halted        bool   `json:"halted"`
	Tainted       bool   `json:"tainted"`
	PendingSwitch bool   `json:"pending_switch"`
	NextSwitchNYP uint64 `json:"next_switch_nyp,omitempty"`
}

// obsMux builds the observability handler. Both endpoints sample under the
// debug server's command lock — between commands, at an instruction
// boundary — and neither executes interpreted code nor touches the logical
// clock, so scraping cannot perturb the replay.
func obsMux(srv *dbgproto.Server, reg *obs.Registry, curVM func() *vm.VM, curDebugger func() *debugger.Debugger, journal bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		srv.Locked(func() { curVM().ObserveInto(reg) })
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := healthReport{Alive: true, Journal: journal}
		srv.Locked(func() {
			cur := curVM()
			h.Events = cur.Events()
			h.Halted = cur.Halted()
			h.Tainted = curDebugger().Tainted()
			if nyp, pending, err := cur.Engine().PendingSwitch(); err == nil {
				h.PendingSwitch = pending
				h.NextSwitchNYP = nyp
			}
		})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	return mux
}

// saveCheckpoint flushes the session state to a -restore-able file; it must
// run under the server's command lock so the VM is at an instruction
// boundary.
func saveCheckpoint(m *vm.VM, path string) {
	snap, err := m.Snapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvserve: exit checkpoint: %v\n", err)
		return
	}
	blob := snap.Encode(m.Hash())
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dvserve: exit checkpoint: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dvserve: checkpoint at event %d -> %s (%d bytes); resume with dvserve -restore %s\n",
		m.Events(), path, len(blob), path)
}
