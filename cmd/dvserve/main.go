// Command dvserve replays a recorded execution under debugger control and
// serves the paper's multi-process architecture (§3, §4) over TCP:
//
//   - a debug endpoint (dbgproto) that front ends like dvdbg connect to
//   - a peek endpoint (ptrace) that serves raw memory reads for
//     out-of-process remote reflection
//   - an optional HTTP observability endpoint (-metrics) exposing
//     Prometheus series at /metrics and a liveness/position report at
//     /healthz — sampled outside the logical clock, so scraping never
//     perturbs the replay
//
// usage: dvserve -t trace.dvt -listen :4455 -peek :4456 <prog>
//
// The -t argument accepts a flat (DVT2) or streaming (DVS1) trace file, or
// a segmented journal directory — the latter opens a journal session that
// seeds from the nearest durable checkpoint (-from-event picks the initial
// position) and re-seeds across segments during time travel.
//
// All listeners are bound before any of them starts serving: a bind
// failure on any endpoint aborts startup with nothing half-started.
//
// SIGINT/SIGTERM shut the server down gracefully: every listener closes
// (connected clients see clean EOFs, not resets), and with -exit-save the
// session checkpoints to a file so `dvserve -restore` resumes it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"dejavu/internal/cli"
	"dejavu/internal/core"
	"dejavu/internal/dbgproto"
	"dejavu/internal/debugger"
	"dejavu/internal/heap"
	"dejavu/internal/obs"
	"dejavu/internal/ptrace"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
)

type serveConfig struct {
	prog       string
	traceIn    string
	listen     string
	peek       string
	metrics    string
	checkpoint uint64
	fromEvent  uint64
	restore    string
	exitSave   string
}

func main() {
	var c serveConfig
	flag.StringVar(&c.traceIn, "t", "trace.dvt", "trace input: a .dvt/.dvs file or a segmented journal directory")
	flag.StringVar(&c.listen, "listen", "127.0.0.1:4455", "debug protocol address")
	flag.StringVar(&c.peek, "peek", "127.0.0.1:4456", "ptrace peek address (empty to disable)")
	flag.StringVar(&c.metrics, "metrics", "", "HTTP observability address serving /metrics and /healthz (empty to disable)")
	flag.Uint64Var(&c.checkpoint, "checkpoint", 10000, "instructions per time-travel checkpoint (0 disables)")
	flag.Uint64Var(&c.fromEvent, "from-event", 0, "initial replay position; journal traces seed from the nearest durable checkpoint")
	flag.StringVar(&c.restore, "restore", "", "resume from a checkpoint file (written by the debugger's save command)")
	flag.StringVar(&c.exitSave, "exit-save", "", "on SIGINT/SIGTERM, write a checkpoint here before exiting (resume with -restore)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvserve [flags] <prog>")
		os.Exit(2)
	}
	c.prog = flag.Arg(0)
	if err := run(c); err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

func run(c serveConfig) error {
	prog, err := cli.LoadProgram(c.prog)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()

	// The trace argument selects the session shape: a directory is a
	// segmented journal (travel re-seeds across segments, replacing the VM
	// wholesale), a file is a flat single-debugger session.
	var session *debugger.JournalSession
	var d *debugger.Debugger
	if st, serr := os.Stat(c.traceIn); serr == nil && st.IsDir() {
		if c.restore != "" {
			return fmt.Errorf("-restore does not apply to a journal directory; use -from-event to position the session")
		}
		fs, err := trace.NewDirFS(c.traceIn)
		if err != nil {
			return err
		}
		if session, err = debugger.OpenJournalSessionObs(prog, fs, c.fromEvent, reg); err != nil {
			return err
		}
		session.CheckpointEvery = c.checkpoint
		session.D.CheckpointEvery = c.checkpoint
		j := session.Journal()
		state := "complete"
		if !j.Complete() {
			state = "crash-cut (partial-trace mode)"
		}
		fmt.Fprintf(os.Stderr, "journal %s: %s, session at event %d\n", c.traceIn, state, session.D.VM.Events())
	} else {
		traceBytes, err := cli.ReadTraceFile(c.traceIn)
		if err != nil {
			return err
		}
		eng, _, err := cli.BuildEngine(prog, cli.EngineFlags{Mode: core.ModeReplay, TraceIn: traceBytes, Obs: reg})
		if err != nil {
			return err
		}
		m, err := vm.New(prog, vm.Config{Engine: eng, Stdout: os.Stdout})
		if err != nil {
			return err
		}
		if c.restore != "" {
			blob, err := os.ReadFile(c.restore)
			if err != nil {
				return err
			}
			if err := m.RestoreBytes(blob); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "resumed from %s at event %d\n", c.restore, m.Events())
		}
		d = debugger.New(m)
		d.CheckpointEvery = c.checkpoint
		if c.fromEvent > 0 {
			if err := d.TravelTo(c.fromEvent); err != nil {
				return err
			}
		}
	}

	srv := &dbgproto.Server{D: d, Session: session, Obs: reg}
	// Every endpoint resolves the CURRENT VM: a journal session replaces
	// its VM wholesale when travel re-seeds from a durable checkpoint, so
	// caching the heap or debugger at startup would serve freed state.
	curVM := func() *vm.VM {
		if session != nil {
			return session.D.VM
		}
		return d.VM
	}
	curDebugger := func() *debugger.Debugger {
		if session != nil {
			return session.D
		}
		return d
	}

	// Bind every listener before any of them starts serving. Binding and
	// serving used to interleave, so a late bind failure (debug port taken)
	// left the peek endpoint live on a server that then exited — clients
	// could connect to a half-started server. Now a failure on any bind
	// closes the already-bound listeners and nothing ever accepts.
	var listeners []net.Listener
	closeAll := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	var pl net.Listener
	if c.peek != "" {
		if pl, err = net.Listen("tcp", c.peek); err != nil {
			return err
		}
		listeners = append(listeners, pl)
	}
	dl, err := net.Listen("tcp", c.listen)
	if err != nil {
		closeAll()
		return err
	}
	listeners = append(listeners, dl)
	var ml net.Listener
	if c.metrics != "" {
		if ml, err = net.Listen("tcp", c.metrics); err != nil {
			closeAll()
			return err
		}
		listeners = append(listeners, ml)
	}
	defer closeAll()

	if pl != nil {
		ps := &ptrace.Server{Obs: reg}
		if session != nil {
			// Resolve the live heap under the command lock: the session VM
			// must not be mid-command (or mid-re-seed) when captured.
			ps.Live = func() (*heap.Heap, ptrace.RootSource) {
				var h *heap.Heap
				var r ptrace.RootSource
				srv.Locked(func() {
					cur := curVM()
					h, r = cur.Heap(), cur
				})
				return h, r
			}
		} else {
			ps.H, ps.Roots = d.VM.Heap(), d.VM
		}
		go ps.Serve(pl)
		fmt.Fprintf(os.Stderr, "peek endpoint on %s\n", pl.Addr())
	}
	if ml != nil {
		go (&http.Server{Handler: obsMux(srv, reg, curVM, curDebugger, session != nil)}).Serve(ml)
		fmt.Fprintf(os.Stderr, "observability endpoint on http://%s/metrics\n", ml.Addr())
	}
	fmt.Fprintf(os.Stderr, "debug endpoint on %s — connect with: dvdbg -connect %s\n", dl.Addr(), dl.Addr())

	// Graceful shutdown: on a signal, first checkpoint the session (under
	// the command lock, so the VM is between commands), then close every
	// listener — Serve returns, clients get EOF rather than a reset, and
	// run() can't exit before the checkpoint is on disk.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "dvserve: %v: shutting down\n", sig)
		if c.exitSave != "" {
			srv.Locked(func() { saveCheckpoint(curVM(), c.exitSave) })
		}
		closeAll()
	}()

	srv.Serve(dl)
	return nil
}

// healthReport is the /healthz body: liveness plus the replay position, all
// read under the command lock so the numbers are mutually consistent.
type healthReport struct {
	Alive         bool   `json:"alive"`
	Journal       bool   `json:"journal"`
	Events        uint64 `json:"events"`
	Halted        bool   `json:"halted"`
	Tainted       bool   `json:"tainted"`
	PendingSwitch bool   `json:"pending_switch"`
	NextSwitchNYP uint64 `json:"next_switch_nyp,omitempty"`
}

// obsMux builds the observability handler. Both endpoints sample under the
// debug server's command lock — between commands, at an instruction
// boundary — and neither executes interpreted code nor touches the logical
// clock, so scraping cannot perturb the replay.
func obsMux(srv *dbgproto.Server, reg *obs.Registry, curVM func() *vm.VM, curDebugger func() *debugger.Debugger, journal bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		srv.Locked(func() { curVM().ObserveInto(reg) })
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := healthReport{Alive: true, Journal: journal}
		srv.Locked(func() {
			cur := curVM()
			h.Events = cur.Events()
			h.Halted = cur.Halted()
			h.Tainted = curDebugger().Tainted()
			if nyp, pending, err := cur.Engine().PendingSwitch(); err == nil {
				h.PendingSwitch = pending
				h.NextSwitchNYP = nyp
			}
		})
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	return mux
}

// saveCheckpoint flushes the session state to a -restore-able file; it must
// run under the server's command lock so the VM is at an instruction
// boundary.
func saveCheckpoint(m *vm.VM, path string) {
	snap, err := m.Snapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvserve: exit checkpoint: %v\n", err)
		return
	}
	blob := snap.Encode(m.Hash())
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dvserve: exit checkpoint: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dvserve: checkpoint at event %d -> %s (%d bytes); resume with dvserve -restore %s\n",
		m.Events(), path, len(blob), path)
}
