// Command dvserve replays a recorded execution under debugger control and
// serves two TCP endpoints, reproducing the paper's multi-process
// architecture (§3, §4):
//
//   - a debug endpoint (dbgproto) that front ends like dvdbg connect to
//   - a peek endpoint (ptrace) that serves raw memory reads for
//     out-of-process remote reflection
//
// usage: dvserve -t trace.dvt -listen :4455 -peek :4456 <prog>
//
// SIGINT/SIGTERM shut the server down gracefully: both listeners close
// (connected clients see clean EOFs, not resets), and with -exit-save the
// session checkpoints to a file so `dvserve -restore` resumes it.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"dejavu/internal/cli"
	"dejavu/internal/core"
	"dejavu/internal/dbgproto"
	"dejavu/internal/debugger"
	"dejavu/internal/ptrace"
	"dejavu/internal/vm"
)

func main() {
	traceIn := flag.String("t", "trace.dvt", "trace input file")
	listen := flag.String("listen", "127.0.0.1:4455", "debug protocol address")
	peek := flag.String("peek", "127.0.0.1:4456", "ptrace peek address (empty to disable)")
	checkpoint := flag.Uint64("checkpoint", 10000, "instructions per time-travel checkpoint (0 disables)")
	restore := flag.String("restore", "", "resume from a checkpoint file (written by the debugger's save command)")
	exitSave := flag.String("exit-save", "", "on SIGINT/SIGTERM, write a checkpoint here before exiting (resume with -restore)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvserve [flags] <prog>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *traceIn, *listen, *peek, *checkpoint, *restore, *exitSave); err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

func run(progArg, traceIn, listen, peek string, checkpoint uint64, restore, exitSave string) error {
	prog, err := cli.LoadProgram(progArg)
	if err != nil {
		return err
	}
	traceBytes, err := cli.ReadTraceFile(traceIn)
	if err != nil {
		return err
	}
	eng, _, err := cli.BuildEngine(prog, cli.EngineFlags{Mode: core.ModeReplay, TraceIn: traceBytes})
	if err != nil {
		return err
	}
	m, err := vm.New(prog, vm.Config{Engine: eng, Stdout: os.Stdout})
	if err != nil {
		return err
	}
	if restore != "" {
		blob, err := os.ReadFile(restore)
		if err != nil {
			return err
		}
		if err := m.RestoreBytes(blob); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "resumed from %s at event %d\n", restore, m.Events())
	}
	d := debugger.New(m)
	d.CheckpointEvery = checkpoint

	var listeners []net.Listener
	if peek != "" {
		pl, err := net.Listen("tcp", peek)
		if err != nil {
			return err
		}
		defer pl.Close()
		listeners = append(listeners, pl)
		go (&ptrace.Server{H: m.Heap(), Roots: m}).Serve(pl)
		fmt.Fprintf(os.Stderr, "peek endpoint on %s\n", pl.Addr())
	}

	dl, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer dl.Close()
	listeners = append(listeners, dl)
	fmt.Fprintf(os.Stderr, "debug endpoint on %s — connect with: dvdbg -connect %s\n", dl.Addr(), dl.Addr())
	srv := &dbgproto.Server{D: d}

	// Graceful shutdown: on a signal, first checkpoint the session (under
	// the command lock, so the VM is between commands), then close every
	// listener — Serve returns, clients get EOF rather than a reset, and
	// run() can't exit before the checkpoint is on disk.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "dvserve: %v: shutting down\n", sig)
		if exitSave != "" {
			srv.Locked(func() { saveCheckpoint(m, exitSave) })
		}
		for _, l := range listeners {
			l.Close()
		}
	}()

	srv.Serve(dl)
	return nil
}

// saveCheckpoint flushes the session state to a -restore-able file; it must
// run under the server's command lock so the VM is at an instruction
// boundary.
func saveCheckpoint(m *vm.VM, path string) {
	snap, err := m.Snapshot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dvserve: exit checkpoint: %v\n", err)
		return
	}
	blob := snap.Encode(m.Hash())
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dvserve: exit checkpoint: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "dvserve: checkpoint at event %d -> %s (%d bytes); resume with dvserve -restore %s\n",
		m.Events(), path, len(blob), path)
}
