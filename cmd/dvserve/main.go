// Command dvserve replays a recorded execution under debugger control and
// serves two TCP endpoints, reproducing the paper's multi-process
// architecture (§3, §4):
//
//   - a debug endpoint (dbgproto) that front ends like dvdbg connect to
//   - a peek endpoint (ptrace) that serves raw memory reads for
//     out-of-process remote reflection
//
// usage: dvserve -t trace.dvt -listen :4455 -peek :4456 <prog>
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"dejavu/internal/cli"
	"dejavu/internal/core"
	"dejavu/internal/dbgproto"
	"dejavu/internal/debugger"
	"dejavu/internal/ptrace"
	"dejavu/internal/vm"
)

func main() {
	traceIn := flag.String("t", "trace.dvt", "trace input file")
	listen := flag.String("listen", "127.0.0.1:4455", "debug protocol address")
	peek := flag.String("peek", "127.0.0.1:4456", "ptrace peek address (empty to disable)")
	checkpoint := flag.Uint64("checkpoint", 10000, "instructions per time-travel checkpoint (0 disables)")
	restore := flag.String("restore", "", "resume from a checkpoint file (written by the debugger's save command)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dvserve [flags] <prog>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *traceIn, *listen, *peek, *checkpoint, *restore); err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

func run(progArg, traceIn, listen, peek string, checkpoint uint64, restore string) error {
	prog, err := cli.LoadProgram(progArg)
	if err != nil {
		return err
	}
	traceBytes, err := cli.ReadTraceFile(traceIn)
	if err != nil {
		return err
	}
	eng, _, err := cli.BuildEngine(prog, cli.EngineFlags{Mode: core.ModeReplay, TraceIn: traceBytes})
	if err != nil {
		return err
	}
	m, err := vm.New(prog, vm.Config{Engine: eng, Stdout: os.Stdout})
	if err != nil {
		return err
	}
	if restore != "" {
		blob, err := os.ReadFile(restore)
		if err != nil {
			return err
		}
		if err := m.RestoreBytes(blob); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "resumed from %s at event %d\n", restore, m.Events())
	}
	d := debugger.New(m)
	d.CheckpointEvery = checkpoint

	if peek != "" {
		pl, err := net.Listen("tcp", peek)
		if err != nil {
			return err
		}
		defer pl.Close()
		go ptrace.Serve(pl, m.Heap(), m)
		fmt.Fprintf(os.Stderr, "peek endpoint on %s\n", pl.Addr())
	}

	dl, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer dl.Close()
	fmt.Fprintf(os.Stderr, "debug endpoint on %s — connect with: dvdbg -connect %s\n", dl.Addr(), dl.Addr())
	srv := &dbgproto.Server{D: d}
	srv.Serve(dl)
	return nil
}
