// POST /v1/ingest: accept a flushed flight-recorder journal from a remote
// machine as a tar bundle, validate it end to end, and store it under the
// data root keyed by content digest.
//
// A crashed process's last act is often a flight flush; shipping that
// directory to a central dvserve makes it debuggable anywhere. The endpoint
// is strict so the store only ever holds journals that will actually open:
// the bundle must unpack to a flat set of plainly named files, parse as a
// journal (manifest CRC), decode every trace chunk (stream CRCs), and load
// every checkpoint named by the manifest. Uploads are deduplicated by a
// SHA-256 digest over the sorted file names and contents — re-ingesting the
// same flush is cheap and idempotent. Accepted bundles land under
// <data-root>/ingest/<digest-prefix>/ via temp-dir-and-rename, so a crash
// mid-ingest never leaves a half-written journal in the store.
package main

import (
	"archive/tar"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"dejavu/internal/obs"
	"dejavu/internal/sessions"
	"dejavu/internal/trace"
)

const (
	maxIngestBytes = 64 << 20 // request body cap
	maxIngestFiles = 1024     // files per bundle cap
)

// ingestResponse is the accept/dedup report.
type ingestResponse struct {
	Digest   string `json:"digest"`
	Deduped  bool   `json:"deduped"`
	Events   int    `json:"events"`
	Segments int    `json:"segments"`
	Origin   uint64 `json:"origin"`
	Complete bool   `json:"complete"`
}

// ingestHandler builds the POST /v1/ingest handler over dataRoot. admit
// (optional) is the manager's load-shedding gate — a draining server, a
// data root below the critical watermark, or an over-rate tenant (from the
// X-Tenant header or ?tenant=) refuses the upload with Retry-After
// guidance before a byte of the body is read.
func ingestHandler(dataRoot string, reg *obs.Registry, admit func(tenant string) error) http.HandlerFunc {
	accepted := reg.Counter("dv_ingest_accepted_total")
	deduped := reg.Counter("dv_ingest_deduped_total")
	rejected := reg.Counter("dv_ingest_rejected_total")
	shed := reg.Counter("dv_ingest_shed_total")
	bytesIn := reg.Counter("dv_ingest_bytes_total")
	root := filepath.Join(dataRoot, "ingest")
	return func(w http.ResponseWriter, r *http.Request) {
		reject := func(code int, msg string) {
			rejected.Inc()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(map[string]string{"error": msg})
		}
		if admit != nil {
			tenant := r.Header.Get("X-Tenant")
			if tenant == "" {
				tenant = r.URL.Query().Get("tenant")
			}
			if err := admit(tenant); err != nil {
				shed.Inc()
				if !sessions.WriteRefusal(w, err) {
					reject(http.StatusServiceUnavailable, err.Error())
				}
				return
			}
		}
		if err := os.MkdirAll(root, 0o755); err != nil {
			reject(http.StatusInternalServerError, err.Error())
			return
		}
		tmp, err := os.MkdirTemp(root, ".in-")
		if err != nil {
			reject(http.StatusInternalServerError, err.Error())
			return
		}
		defer os.RemoveAll(tmp)
		n, err := unpackBundle(tar.NewReader(http.MaxBytesReader(w, r.Body, maxIngestBytes)), tmp)
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				reject(http.StatusRequestEntityTooLarge,
					fmt.Sprintf("bundle exceeds the %d-byte ingest cap", maxIngestBytes))
				return
			}
			reject(http.StatusBadRequest, "bad bundle: "+err.Error())
			return
		}
		if n == 0 {
			reject(http.StatusBadRequest, "empty bundle")
			return
		}
		fs, err := trace.NewDirFS(tmp)
		if err != nil {
			reject(http.StatusInternalServerError, err.Error())
			return
		}
		j, err := trace.OpenJournal(fs)
		if err != nil {
			reject(http.StatusUnprocessableEntity, "bundle is not a journal: "+err.Error())
			return
		}
		// CRC-validate every byte the manifest commits to: decode the full
		// trace (chunk checksums) and load every named checkpoint.
		if _, err := j.Flat(0); err != nil {
			reject(http.StatusUnprocessableEntity, "journal trace is torn or corrupt: "+err.Error())
			return
		}
		for _, c := range j.Manifest.Checkpoints {
			if _, err := j.LoadCheckpoint(c); err != nil {
				reject(http.StatusUnprocessableEntity,
					fmt.Sprintf("journal checkpoint %s is unloadable: %v", c.Name, err))
				return
			}
		}
		digest, total, err := bundleDigest(tmp)
		if err != nil {
			reject(http.StatusInternalServerError, err.Error())
			return
		}
		resp := ingestResponse{
			Digest:   digest,
			Events:   j.Events(),
			Segments: j.Segments(),
			Origin:   j.Origin(),
			Complete: j.Complete(),
		}
		final := filepath.Join(root, digest[:16])
		code := http.StatusCreated
		if _, err := os.Stat(final); err == nil {
			resp.Deduped = true
			code = http.StatusOK
			deduped.Inc()
		} else if err := os.Rename(tmp, final); err != nil {
			reject(http.StatusInternalServerError, "store: "+err.Error())
			return
		} else {
			accepted.Inc()
			bytesIn.Add(uint64(total))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(resp)
	}
}

// unpackBundle extracts a flat journal bundle into dir. One leading
// directory component is tolerated (tar bundles of a directory carry it);
// anything deeper, non-regular, dot-prefixed, or path-escaping is refused
// before a byte lands on disk.
func unpackBundle(tr *tar.Reader, dir string) (int, error) {
	n := 0
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if hdr.Typeflag == tar.TypeDir {
			continue
		}
		if hdr.Typeflag != tar.TypeReg {
			return n, fmt.Errorf("entry %q: only regular files allowed", hdr.Name)
		}
		name := path.Clean(hdr.Name)
		if name == ".." || strings.HasPrefix(name, "../") {
			return n, fmt.Errorf("entry %q: path escapes the bundle", hdr.Name)
		}
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if name == "" || name == "." || name == ".." ||
			strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
			return n, fmt.Errorf("entry %q: unsupported path", hdr.Name)
		}
		n++
		if n > maxIngestFiles {
			return n, fmt.Errorf("bundle has more than %d files", maxIngestFiles)
		}
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return n, err
		}
		if _, err := io.Copy(f, tr); err != nil {
			f.Close()
			return n, err
		}
		if err := f.Close(); err != nil {
			return n, err
		}
	}
}

// bundleDigest hashes the unpacked bundle: SHA-256 over the sorted file
// names and contents, NUL-delimited, so the digest identifies the journal's
// exact bytes independent of tar framing or upload order.
func bundleDigest(dir string) (string, int64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	var total int64
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", 0, err
		}
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(b)
		h.Write([]byte{0})
		total += int64(len(b))
	}
	return hex.EncodeToString(h.Sum(nil)), total, nil
}
