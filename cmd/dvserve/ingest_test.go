// Ingest endpoint round-trip: a real recorded journal tars up, uploads as
// 201 Created, dedups to 200 on re-upload, and lands in the store as a
// directory that opens. Corrupt and malicious bundles are refused before
// anything reaches the store.
package main

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"dejavu/internal/cli"
	"dejavu/internal/obs"
	"dejavu/internal/replaycheck"
	"dejavu/internal/trace"
)

// recordBundle records a segmented journal and returns it as a tar bundle
// with one leading directory component, the way `tar -cf - journal/` would.
func recordBundle(t *testing.T) []byte {
	t.Helper()
	prog, err := cli.LoadProgram("workload:fig1ab")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fs, err := trace.NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replaycheck.RecordJournal(prog, fs, replaycheck.Options{Seed: 1, RotateEvents: 50}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hdr := &tar.Header{Name: "journal/" + e.Name(), Mode: 0o644, Size: int64(len(b))}
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatal(err)
		}
		if _, err := tw.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBundle(t *testing.T, url string, bundle []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/x-tar", bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestIngestRoundTrip(t *testing.T) {
	root := t.TempDir()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", ingestHandler(root, obs.NewRegistry(), nil))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	bundle := recordBundle(t)

	var resp ingestResponse
	if code := postBundle(t, ts.URL, bundle, &resp); code != http.StatusCreated {
		t.Fatalf("first upload: %d %+v, want 201", code, resp)
	}
	if resp.Deduped || resp.Digest == "" || resp.Segments == 0 || !resp.Complete {
		t.Fatalf("first upload response: %+v", resp)
	}

	// The stored bundle is a journal that opens.
	fs, err := trace.NewDirFS(filepath.Join(root, "ingest", resp.Digest[:16]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.OpenJournal(fs); err != nil {
		t.Fatalf("stored bundle does not open: %v", err)
	}

	// Re-upload dedups by content digest.
	var again ingestResponse
	if code := postBundle(t, ts.URL, bundle, &again); code != http.StatusOK || !again.Deduped {
		t.Fatalf("re-upload: %d %+v, want 200 deduped", code, again)
	}
	if again.Digest != resp.Digest {
		t.Fatalf("digest changed across identical uploads: %s vs %s", again.Digest, resp.Digest)
	}

	// A corrupt bundle (flip a byte mid-stream) is refused with 422 and
	// never lands in the store.
	bad := bytes.Clone(bundle)
	bad[len(bad)/2] ^= 0xff
	if code := postBundle(t, ts.URL, bad, nil); code != http.StatusUnprocessableEntity && code != http.StatusBadRequest {
		t.Fatalf("corrupt upload: %d, want 422 or 400", code)
	}

	// A path-escaping entry is refused before a byte lands on disk.
	var evil bytes.Buffer
	tw := tar.NewWriter(&evil)
	tw.WriteHeader(&tar.Header{Name: "journal/../../escape", Mode: 0o644, Size: 1})
	tw.Write([]byte{0})
	tw.Close()
	if code := postBundle(t, ts.URL, evil.Bytes(), nil); code != http.StatusBadRequest {
		t.Fatalf("escaping upload: %d, want 400", code)
	}
	if _, err := os.Stat(filepath.Join(root, "escape")); !os.IsNotExist(err) {
		t.Fatal("path-escaping entry landed outside the bundle dir")
	}

	// Only the two real ingests are in the store (plus no temp debris).
	ents, err := os.ReadDir(filepath.Join(root, "ingest"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("store holds %d entries, want 1: %v", len(ents), ents)
	}
}
