// Command dvdbg is the debugger front end (the paper's §4 GUI process,
// rendered as a REPL). It either connects to a running dvserve over TCP or
// hosts the whole session in-process:
//
//	dvdbg -connect host:port            attach to dvserve
//	dvdbg -t trace.dvt <prog>           replay and debug in-process
package main

import (
	"bufio"
	"fmt"
	"net"
	"os"

	"flag"

	"dejavu/internal/cli"
	"dejavu/internal/core"
	"dejavu/internal/dbgproto"
	"dejavu/internal/debugger"
	"dejavu/internal/vm"
)

func main() {
	connect := flag.String("connect", "", "attach to a dvserve debug endpoint")
	session := flag.String("session", "", "session ID to attach on a multi-tenant dvserve (with -connect)")
	traceIn := flag.String("t", "trace.dvt", "trace input file (in-process mode)")
	flag.Parse()
	var err error
	if *connect != "" {
		err = remoteREPL(*connect, *session)
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: dvdbg -connect host:port | dvdbg -t trace.dvt <prog>")
			os.Exit(2)
		}
		err = localREPL(flag.Arg(0), *traceIn)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvdbg:", err)
		os.Exit(1)
	}
}

func remoteREPL(addr, session string) error {
	// The reconnecting client survives a dvserve restart (or a dropped
	// connection) with capped exponential backoff instead of dying at the
	// first transport hiccup.
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dvdbg: "+format+"\n", args...)
	}
	c, err := dbgproto.DialRetry(addr, logf)
	if err != nil {
		return err
	}
	defer c.Close()
	send := func(cmd string) (string, error) { return c.Send(cmd) }
	if session != "" {
		// Multi-tenant dvserve: bind this connection to a session, and
		// re-bind transparently after any reconnect (the attachment is
		// per-connection state the server forgets on transport loss).
		send = func(cmd string) (string, error) {
			if _, err := c.Send("attach " + session); err != nil {
				return "", err
			}
			return c.Send(cmd)
		}
		if _, err := send("status"); err != nil {
			return fmt.Errorf("attach %s: %w", session, err)
		}
		fmt.Printf("connected to %s, session %s (type help)\n", addr, session)
		return repl(send)
	}
	fmt.Printf("connected to %s (type help)\n", addr)
	return repl(send)
}

func localREPL(progArg, traceIn string) error {
	prog, err := cli.LoadProgram(progArg)
	if err != nil {
		return err
	}
	traceBytes, err := cli.ReadTraceFile(traceIn)
	if err != nil {
		return err
	}
	eng, _, err := cli.BuildEngine(prog, cli.EngineFlags{Mode: core.ModeReplay, TraceIn: traceBytes})
	if err != nil {
		return err
	}
	m, err := vm.New(prog, vm.Config{Engine: eng})
	if err != nil {
		return err
	}
	d := debugger.New(m)
	// Host a loopback server so both modes share one command surface.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	srv := &dbgproto.Server{D: d}
	go srv.Serve(l)
	c, err := dbgproto.Dial(l.Addr().String())
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("debugging %s replaying %s (type help)\n", progArg, traceIn)
	return repl(func(cmd string) (string, error) { return c.Send(cmd) })
}

func repl(send func(string) (string, error)) error {
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("(dvdbg) ")
		if !sc.Scan() {
			return nil
		}
		line := sc.Text()
		if line == "" {
			continue
		}
		body, err := send(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(body)
		if line == "quit" {
			return nil
		}
	}
}
