// Command dejavu runs, records, and replays programs on the DejaVu-Go VM.
//
//	dejavu run [flags] <prog>          execute (no recording)
//	dejavu record [flags] <prog>       execute and write a trace
//	dejavu replay [flags] <prog>       re-execute a recorded trace
//	dejavu recover [flags] <trace>     salvage a torn or corrupt recording
//	dejavu vet [flags] <prog|all>      static replay-determinism analyses
//	dejavu opt [flags] <prog>          certified replay-safe bytecode optimizer
//	dejavu asm <in.dvs> <out.dva>      assemble to a binary image
//	dejavu disasm <in.dva>             print assembler text
//	dejavu workloads                   list built-in benchmark programs
//	dejavu info <prog>                 show program structure
//
// <prog> is a .dvs assembly file, a .dva image, or workload:<name>.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dejavu/internal/bytecode"
	"dejavu/internal/cli"
	"dejavu/internal/core"
	"dejavu/internal/flightrec"
	"dejavu/internal/minimize"
	"dejavu/internal/obs"
	"dejavu/internal/opt"
	"dejavu/internal/replaycheck"
	"dejavu/internal/tools"
	"dejavu/internal/trace"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:], core.ModeOff)
	case "record":
		err = cmdRun(os.Args[2:], core.ModeRecord)
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "recover":
		err = cmdRecover(os.Args[2:])
	case "asm":
		err = cmdAsm(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "vet":
		// vet owns its exit-code discipline: 0 clean, 1 findings, 2 usage.
		os.Exit(cmdVet(os.Args[2:]))
	case "opt":
		// opt likewise: 0 certified, 1 refused, 2 usage.
		os.Exit(cmdOpt(os.Args[2:]))
	case "minimize":
		err = cmdMinimize(os.Args[2:])
	case "traceinfo":
		err = cmdTraceInfo(os.Args[2:])
	case "workloads":
		for _, n := range workloads.Names() {
			fmt.Println(n)
		}
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dejavu <run|record|replay|recover|minimize|vet|opt|asm|disasm|verify|traceinfo|workloads|info> [flags] args...
run "dejavu <cmd> -h" for command flags`)
}

func cmdRun(args []string, mode core.Mode) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Int64("seed", -1, "seeded preemption (-1 = real host timer)")
	realtime := fs.Bool("realtime", false, "use the real wall clock")
	heapKB := fs.Int("heap", 1024, "initial semispace KiB")
	traceOut := fs.String("o", "trace.dvt", "trace output file, or journal directory with -segment-* (record mode)")
	flat := fs.Bool("flat", false, "buffer the whole trace in memory and write the flat container (record mode)")
	segEvents := fs.Int("segment-events", 0, "rotate the trace into a segmented journal after this many logged events; -o names the journal directory (record mode)")
	segBytes := fs.Int64("segment-bytes", 0, "rotate the trace into a segmented journal after a segment reaches this size; -o names the journal directory (record mode)")
	syncMode := fs.String("sync", "none", "trace durability: none (page cache), chunk (fsync per chunk), event (fsync per event)")
	stats := fs.Bool("stats", false, "print execution statistics")
	preflight := fs.Bool("preflight", false, "run the static determinism analyses before recording; refuse to record on findings")
	optimize := fs.Bool("optimize", false, "run the certified bytecode optimizer before execution; a refused pipeline runs the input unoptimized")
	metricsOut := fs.String("metrics-out", "", "write engine/trace metrics as JSON to this file after the run")
	flight := fs.Bool("flight", false, "always-on flight recorder: record into a bounded in-memory ring; a fault flushes the recent window as a journal to -o")
	flightEvents := fs.Int("flight-events", 0, "flight window size in logged events (default 4096)")
	flightBytes := fs.Int64("flight-bytes", 0, "flight window size in bytes (overrides -flight-events)")
	raceFault := fs.Bool("race", false, "with -flight: run the lockset race detector and treat a hit as a flush-triggering fault")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one program argument")
	}
	if *flight {
		// The flight ring rides the record pipeline, whatever subcommand
		// asked for it: `dejavu run -flight` is a normal run with the
		// recorder always on.
		mode = core.ModeRecord
		if *segEvents > 0 || *segBytes > 0 || *flat {
			return fmt.Errorf("-flight is exclusive of -segment-* and -flat")
		}
	} else if *raceFault {
		return fmt.Errorf("-race needs -flight (use `dejavu replay -race` to analyze a trace)")
	}
	reg := metricsRegistry(*metricsOut)
	prog, optRes, err := cli.LoadProgramOptimized(fs.Arg(0), *optimize, reg)
	if err != nil {
		return err
	}
	reportOptimize(optRes)
	flags := cli.EngineFlags{Mode: mode, Seed: *seed, Realtime: *realtime, Preflight: *preflight}
	flags.Obs = reg
	if flags.Sync, err = trace.ParseSyncPolicy(*syncMode); err != nil {
		return err
	}
	if *preflight && mode == core.ModeRecord {
		// Gate before the trace file is created, so a refused recording
		// leaves nothing behind (BuildEngine re-checks for API callers).
		if err := cli.Preflight(prog); err != nil {
			return err
		}
	}
	// Record mode streams chunks to the output file as it runs, so the
	// trace never lives in memory; -flat restores the old buffered path and
	// -segment-* rotates the stream into a checkpointed journal directory.
	var sink *trace.StreamWriter
	var out *os.File
	var journal *trace.SegmentWriter
	var ring *flightrec.Ring
	if *flight {
		ring, err = flightrec.NewRing(vm.ProgramHash(prog), flightrec.Options{
			WindowEvents: *flightEvents,
			WindowBytes:  *flightBytes,
			Obs:          reg,
		})
		if err != nil {
			return err
		}
		flags.TraceSink = ring
	} else if mode == core.ModeRecord && (*segEvents > 0 || *segBytes > 0) {
		dfs, err := trace.NewDirFS(*traceOut)
		if err != nil {
			return err
		}
		journal, err = trace.NewSegmentWriter(dfs, vm.ProgramHash(prog), trace.SegmentOptions{
			StreamOptions: trace.StreamOptions{Sync: flags.Sync, Obs: flags.Obs},
			RotateEvents:  *segEvents,
			RotateBytes:   *segBytes,
		})
		if err != nil {
			return err
		}
		flags.TraceSink = journal
	} else if mode == core.ModeRecord && !*flat {
		sink, out, err = flags.OpenTraceSink(*traceOut, vm.ProgramHash(prog))
		if err != nil {
			return err
		}
		defer out.Close()
	}
	eng, stop, err := cli.BuildEngine(prog, flags)
	if err != nil {
		return err
	}
	defer stop()
	vcfg := vm.Config{Engine: eng, Stdout: os.Stdout, HeapBytes: *heapKB * 1024}
	if journal != nil {
		vcfg.Journal = journal // a nil *SegmentWriter must not become a non-nil interface
	}
	var rd *tools.RaceDetector
	if ring != nil {
		vcfg.Journal = ring
		if *raceFault {
			rd = tools.NewRaceDetector()
			// Freeze at the instant of detection so the window still holds
			// the racing accesses when the flush happens after the run.
			rd.OnRace = func(tools.Race) { ring.Freeze() }
			vcfg.MemHook = rd
			vcfg.SyncHook = rd
		}
	}
	m, err := vm.New(prog, vcfg)
	if err != nil {
		return err
	}
	runErr := m.Run()
	if mode == core.ModeRecord {
		traceBytes := eng.End()
		switch {
		case ring != nil:
			class := flightrec.Classify(runErr)
			if rd != nil && len(rd.Races()) > 0 {
				class = "race"
				for _, rc := range rd.Races() {
					fmt.Fprintf(os.Stderr, "race: obj %d slot %d threads %v (%s)\n", rc.Obj, rc.Slot, rc.Threads, rc.Detail)
				}
			}
			if class == "" {
				fmt.Fprintf(os.Stderr, "flight: clean exit; window discarded (%d bytes seen)\n",
					ring.Stats().TotalBytes)
			} else {
				info, ferr := ring.Flush(*traceOut, class)
				if ferr != nil {
					return fmt.Errorf("flight flush after %s fault: %w (run error: %v)", class, ferr, runErr)
				}
				fmt.Fprintf(os.Stderr, "flight: %s fault; flushed %d event(s) in %d segment(s) from event %d -> %s/\n",
					class, info.Events, info.Segments, info.Origin, *traceOut)
				if info.Origin > 0 {
					fmt.Fprintf(os.Stderr, "flight: replay with `dejavu replay -t %s %s`\n", *traceOut, fs.Arg(0))
				}
			}
		case journal != nil:
			if err := journal.Close(); err != nil {
				return err
			}
			man := journal.ManifestSnapshot()
			fmt.Fprintf(os.Stderr, "journal: %d bytes in %d segment(s), %d checkpoint(s) -> %s/\n",
				journal.Stats().TotalBytes, len(man.Segments), len(man.Checkpoints), *traceOut)
		case sink != nil:
			if err := sink.Close(); err != nil {
				return err
			}
			if err := out.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace: %d bytes (streamed) -> %s\n", sink.Stats().TotalBytes, *traceOut)
		default:
			if err := os.WriteFile(*traceOut, traceBytes, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "trace: %d bytes -> %s\n", len(traceBytes), *traceOut)
		}
	}
	if *stats {
		printStats(m, eng)
	}
	if err := dumpMetrics(flags.Obs, *metricsOut, m); err != nil {
		return err
	}
	return runErr
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceIn := fs.String("t", "trace.dvt", "trace input file, or a journal directory")
	heapKB := fs.Int("heap", 1024, "initial semispace KiB")
	stats := fs.Bool("stats", false, "print execution statistics")
	race := fs.Bool("race", false, "run the lockset race detector over the replay")
	profile := fs.Bool("profile", false, "print a replay profile (hot methods, threads, opcodes)")
	contention := fs.Bool("contention", false, "print monitor acquisition counts")
	partial := fs.Bool("partial", false, "the trace is a salvaged prefix (e.g. from `dejavu recover -o`): stop cleanly at the salvage point instead of failing")
	fromEvent := fs.Uint64("from-event", 0, "seed replay from the nearest durable checkpoint at or before this instruction count (journal input only)")
	deadline := fs.Duration("deadline", 0, "abort with a stall report if replay stops consuming the trace for this long (0 = no watchdog)")
	optimize := fs.Bool("optimize", false, "re-derive the certified optimized program the trace was recorded from (the optimizer is deterministic)")
	metricsOut := fs.String("metrics-out", "", "write engine/trace metrics as JSON to this file after the run")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one program argument")
	}
	reg := metricsRegistry(*metricsOut)
	prog, optRes, err := cli.LoadProgramOptimized(fs.Arg(0), *optimize, reg)
	if err != nil {
		return err
	}
	reportOptimize(optRes)
	flags := cli.EngineFlags{Mode: core.ModeReplay, PartialTrace: *partial, Deadline: *deadline}
	flags.Obs = reg
	var seedCk *trace.Checkpoint
	if fi, err := os.Stat(*traceIn); err == nil && fi.IsDir() {
		// A directory is a segmented journal: replay its segment chain, and
		// with -from-event seed from the best durable checkpoint.
		dfs, err := trace.NewDirFS(*traceIn)
		if err != nil {
			return err
		}
		j, err := trace.OpenJournal(dfs)
		if err != nil {
			return err
		}
		if h := vm.ProgramHash(prog); j.ProgHash() != h {
			return fmt.Errorf("journal %s was recorded from program %x, not %x", *traceIn, j.ProgHash(), h)
		}
		target := *fromEvent
		if org := j.Origin(); org > 0 {
			// A flight window starts mid-run: seeding from its origin
			// checkpoint is mandatory, and earlier seeds do not exist.
			if target < org {
				target = org
			}
			fmt.Fprintf(os.Stderr, "flight journal: %s\n", j)
		}
		seg := 0
		if target > 0 {
			if seedCk = j.BestCheckpoint(target); seedCk != nil {
				seg = seedCk.Index
			}
		}
		if org := j.Origin(); org > 0 && (seedCk == nil || seedCk.VMEvents < org) {
			return fmt.Errorf("flight journal starts at event %d but has no loadable checkpoint covering it", org)
		}
		src, err := j.Source(seg)
		if err != nil {
			return err
		}
		flags.TraceSrc = src
		if !j.Complete() {
			flags.PartialTrace = true
			fmt.Fprintf(os.Stderr, "incomplete journal (crash-cut recording): %s\n", j)
		}
	} else {
		if *fromEvent > 0 {
			return fmt.Errorf("-from-event needs a journal directory; %s is a flat trace file", *traceIn)
		}
		f, err := os.Open(*traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		// Sniff the container: streamed recordings replay incrementally,
		// flat ones load into memory as before.
		br := bufio.NewReader(f)
		magic, _ := br.Peek(4)
		if trace.IsStream(magic) {
			src, err := trace.NewStreamReader(br, vm.ProgramHash(prog))
			if err != nil {
				return err
			}
			src.Instrument(flags.Obs)
			flags.TraceSrc = src
		} else {
			traceBytes, err := io.ReadAll(br)
			if err != nil {
				return err
			}
			flags.TraceIn = traceBytes
		}
	}
	eng, stop, err := cli.BuildEngine(prog, flags)
	if err != nil {
		return err
	}
	defer stop()
	cfg := vm.Config{Engine: eng, Stdout: os.Stdout, HeapBytes: *heapKB * 1024}
	var rd *tools.RaceDetector
	var prof *tools.Profiler
	var cont *tools.Contention
	if *race {
		rd = tools.NewRaceDetector()
		cfg.MemHook = rd
	}
	if *profile {
		prof = tools.NewProfiler(prog)
		cfg.Observer = prof
	}
	if *contention {
		cont = tools.NewContention()
	}
	if rd != nil || cont != nil {
		multi := &tools.Multi{}
		if rd != nil {
			multi.Sync = append(multi.Sync, rd)
		}
		if cont != nil {
			multi.Sync = append(multi.Sync, cont)
		}
		cfg.SyncHook = multi
	}
	m, err := vm.New(prog, cfg)
	if err != nil {
		return err
	}
	if seedCk != nil {
		// Restore the durable boundary state and align the engine's switch
		// countdown; replay then covers only the segment suffix.
		if err := m.RestoreBytes(seedCk.State); err != nil {
			return fmt.Errorf("seed checkpoint %d: %w (the replay VM must match the recording geometry; check -heap)", seedCk.Index, err)
		}
		if err := eng.SeedReplay(seedCk.BoundaryNYP); err != nil {
			return fmt.Errorf("seed checkpoint %d: %w", seedCk.Index, err)
		}
		fmt.Fprintf(os.Stderr, "seeded from checkpoint %d at %d events\n", seedCk.Index, seedCk.VMEvents)
	}
	runErr := m.Run()
	if runErr != nil && errors.Is(runErr, io.ErrUnexpectedEOF) {
		if *partial {
			// Stopping at the end of a salvaged prefix is the expected
			// outcome of replaying a recovered crash, not a failure.
			n, _ := eng.ReplayedEvents()
			fmt.Fprintf(os.Stderr, "partial trace: replayed %d events, stopped at the salvage point\n", n)
			runErr = nil
		} else {
			runErr = fmt.Errorf("%w (trace is torn; run `dejavu recover` to salvage a replayable prefix, or replay a salvaged trace with -partial)", runErr)
		}
	}
	if *stats {
		printStats(m, eng)
	}
	if rd != nil {
		fmt.Fprint(os.Stderr, rd.Report())
	}
	if prof != nil {
		fmt.Fprint(os.Stderr, prof.Report(10))
	}
	if cont != nil {
		fmt.Fprint(os.Stderr, cont.Report(5))
	}
	if err := dumpMetrics(flags.Obs, *metricsOut, m); err != nil {
		return err
	}
	return runErr
}

// reportOptimize surfaces a -optimize outcome on stderr: a certified
// pipeline notes the shrink; a refused one prints the certifier's
// findings — the run proceeds on the unoptimized input, which is what
// res.Program already holds.
// cmdMinimize delta-debugs a recorded preemption schedule down to a
// minimal switch set that still reproduces the recording's fault.
func cmdMinimize(args []string) error {
	fs := flag.NewFlagSet("minimize", flag.ExitOnError)
	traceIn := fs.String("t", "trace.dvt", "trace input: flat file or journal directory (must be a from-start recording)")
	heapKB := fs.Int("heap", 1024, "initial semispace KiB (must match the recording)")
	maxEvents := fs.Uint64("max-events", 0, "event budget the recording ran under (0 = default)")
	deadline := fs.Duration("deadline", 2*time.Second, "stall watchdog for candidate replays")
	maxCand := fs.Int("max-candidates", 0, "cap on candidate schedules tried (0 = unlimited)")
	outTrace := fs.String("o", "", "write the reduced trace here (flat container)")
	reportOut := fs.String("report", "", "write the JSON report here (default stdout)")
	verbose := fs.Bool("v", false, "log search progress")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one program argument")
	}
	prog, _, err := cli.LoadProgramOptimized(fs.Arg(0), false, nil)
	if err != nil {
		return err
	}
	var raw []byte
	if fi, err := os.Stat(*traceIn); err == nil && fi.IsDir() {
		dfs, err := trace.NewDirFS(*traceIn)
		if err != nil {
			return err
		}
		j, err := trace.OpenJournal(dfs)
		if err != nil {
			return err
		}
		if org := j.Origin(); org > 0 {
			return fmt.Errorf("%s is a flight window starting at event %d; minimize needs a from-start recording (its switch positions are meaningless without the prefix)", *traceIn, org)
		}
		if raw, err = j.Flat(0); err != nil {
			return err
		}
	} else {
		if raw, err = os.ReadFile(*traceIn); err != nil {
			return err
		}
		if trace.IsStream(raw) {
			return fmt.Errorf("%s is a streamed trace; re-record with -flat or into a journal, or point -t at a journal directory", *traceIn)
		}
	}
	o := minimize.Options{
		Record:        replaycheck.Options{HeapBytes: *heapKB * 1024, MaxEvents: *maxEvents},
		Deadline:      *deadline,
		MaxCandidates: *maxCand,
	}
	if *verbose {
		o.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	res, err := minimize.Run(prog, raw, o)
	if err != nil {
		return err
	}
	rep := res.Report
	fmt.Fprintf(os.Stderr, "minimize: %s fault reproduced with %d of %d switch(es) (%.0f%% reduction, %d candidates)\n",
		rep.Fault, rep.KeptSwitches, rep.OriginalSwitches, rep.ReductionPct, rep.Candidates)
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *reportOut != "" {
		if err := os.WriteFile(*reportOut, buf, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(buf)
	}
	if *outTrace != "" {
		if err := os.WriteFile(*outTrace, res.Trace, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "minimize: reduced trace (%d bytes) -> %s\n", len(res.Trace), *outTrace)
	}
	return nil
}

func reportOptimize(res *opt.Result) {
	if res == nil {
		return
	}
	if res.Certified {
		fmt.Fprintf(os.Stderr, "opt: certified, %d -> %d instructions\n", res.InstrsBefore, res.InstrsAfter)
		return
	}
	fmt.Fprintf(os.Stderr, "opt: REFUSED, running unoptimized\n%s", res.Report.Text())
}

// metricsRegistry returns a registry when a -metrics-out path was given,
// nil (collecting nothing) otherwise.
func metricsRegistry(path string) *obs.Registry {
	if path == "" {
		return nil
	}
	return obs.NewRegistry()
}

// dumpMetrics folds the VM's final levels into reg and writes the snapshot
// as JSON. The dump happens after the run finishes, so it reads nothing
// concurrently with execution.
func dumpMetrics(reg *obs.Registry, path string, m *vm.VM) error {
	if reg == nil || path == "" {
		return nil
	}
	if m != nil {
		m.ObserveInto(reg)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.WriteJSON(f, reg.Snapshot())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics dump: %w", err)
	}
	fmt.Fprintf(os.Stderr, "metrics -> %s\n", path)
	return nil
}

// cmdRecover salvages the longest valid prefix of a torn or corrupt
// streamed recording, optionally writing it out and replaying it to show
// how far the salvage carries.
func cmdRecover(args []string) error {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	out := fs.String("o", "", "write the salvaged trace (flat container) to this file")
	replayProg := fs.String("replay", "", "replay the salvage against this program and report coverage")
	heapKB := fs.Int("heap", 1024, "initial semispace KiB (with -replay)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dejavu recover [-o out.dvt] [-replay <prog>] <trace|journal-dir>")
	}
	if fi, err := os.Stat(fs.Arg(0)); err == nil && fi.IsDir() {
		return recoverJournal(fs.Arg(0), *replayProg, *heapKB*1024)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	flat, rep, err := trace.Recover(f)
	if err != nil {
		return err
	}
	fmt.Println(rep.String())
	if *out != "" {
		if err := os.WriteFile(*out, flat, 0o644); err != nil {
			return err
		}
		fmt.Printf("salvaged trace (%d bytes flat) -> %s\n", len(flat), *out)
	}
	if *replayProg != "" {
		return replaySalvage(*replayProg, flat, rep, *heapKB*1024)
	}
	return nil
}

// recoverJournal reports what survives in a segmented journal directory —
// sealed segments, durable checkpoints, and the salvaged unsealed tail —
// and optionally replays it to show how far recovery carries.
func recoverJournal(dir, replayProg string, heapBytes int) error {
	dfs, err := trace.NewDirFS(dir)
	if err != nil {
		return err
	}
	j, err := trace.OpenJournal(dfs)
	if err != nil {
		return err
	}
	fmt.Println(j.String())
	for _, s := range j.Manifest.Segments {
		fmt.Printf("  %s: %d events, %d switches, %d bytes (sealed)\n", s.Name, s.Events, s.Switches, s.Bytes)
	}
	for _, c := range j.Manifest.Checkpoints {
		fmt.Printf("  %s: seeds segment %d at %d events\n", c.Name, c.Index, c.VMEvents)
	}
	if j.Complete() {
		fmt.Println("journal is complete; recovery loses nothing")
	} else {
		fmt.Println("journal is incomplete: loss is bounded by the unsealed tail")
	}
	if replayProg == "" {
		return nil
	}
	prog, err := cli.LoadProgram(replayProg)
	if err != nil {
		return err
	}
	res, _, err := replaycheck.ReplayJournal(prog, dfs, replaycheck.Options{HeapBytes: heapBytes})
	if err != nil {
		return err
	}
	if res.RunErr == nil {
		fmt.Fprintf(os.Stderr, "replay complete: %d events\n", res.Events)
		return nil
	}
	if errors.Is(res.RunErr, io.ErrUnexpectedEOF) {
		fmt.Fprintf(os.Stderr, "partial journal: replayed %d events, stopped at the salvage point\n", res.Events)
		return nil
	}
	return res.RunErr
}

// replaySalvage replays a salvaged trace. A salvage without its end event
// is replayed as a partial trace: the run deterministically reproduces the
// recording up to the salvage point, then reports coverage — that is the
// expected outcome of recovering a crash, so it exits 0.
func replaySalvage(progArg string, flat []byte, rep *trace.RecoverReport, heapBytes int) error {
	prog, err := cli.LoadProgram(progArg)
	if err != nil {
		return err
	}
	flags := cli.EngineFlags{Mode: core.ModeReplay, TraceIn: flat, PartialTrace: !rep.EndEvent}
	eng, stop, err := cli.BuildEngine(prog, flags)
	if err != nil {
		return err
	}
	defer stop()
	m, err := vm.New(prog, vm.Config{Engine: eng, Stdout: os.Stdout, HeapBytes: heapBytes})
	if err != nil {
		return err
	}
	runErr := m.Run()
	n, _ := eng.ReplayedEvents()
	if runErr == nil {
		fmt.Fprintf(os.Stderr, "replay complete: %d events\n", n)
		return nil
	}
	if errors.Is(runErr, io.ErrUnexpectedEOF) {
		fmt.Fprintf(os.Stderr, "partial trace: replayed %d of ~%d events\n", n, rep.EstimatedEvents)
		return nil
	}
	return runErr
}

func printStats(m *vm.VM, eng *core.Engine) {
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "events=%d yieldpoints=%d preemptive-switches=%d clockreads=%d natives=%d\n",
		m.Events(), st.YieldPoints, st.Switches, st.ClockReads, st.NativeCalls)
	fmt.Fprintf(os.Stderr, "heap: used=%dB collections=%d grows=%d allocs=%d\n",
		m.Heap().Used(), m.Heap().Collections, m.Heap().Grows, m.Heap().AllocCount)
}

func cmdAsm(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: dejavu asm <in.dvs> <out.dva>")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := bytecode.Assemble(string(src))
	if err != nil {
		return err
	}
	return os.WriteFile(args[1], bytecode.EncodeImage(prog), 0o644)
}

func cmdDisasm(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dejavu disasm <prog>")
	}
	prog, err := cli.LoadProgram(args[0])
	if err != nil {
		return err
	}
	fmt.Print(bytecode.Disassemble(prog))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	workers := fs.Int("workers", 0, "also run record→replay verification across N parallel workers (0 = static bytecode verification only)")
	seeds := fs.Int("seeds", 5, "preemption seeds per program for replay verification")
	timeout := fs.Duration("timeout", 0, "per-job time budget; a job that overruns it fails with a stall report instead of hanging the pool (0 = none)")
	metricsOut := fs.String("metrics-out", "", "write verification-pool metrics as JSON to this file (replay verification only)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dejavu verify [-workers N] [-seeds K] [-timeout D] <prog|all>")
	}
	arg := fs.Arg(0)
	if *workers <= 0 {
		if arg == "all" {
			return fmt.Errorf("verify all requires -workers")
		}
		prog, err := cli.LoadProgram(arg)
		if err != nil {
			return err
		}
		facts, err := vm.VerifyProgram(prog)
		if err != nil {
			return err
		}
		for i, m := range prog.Methods {
			ret := "void"
			if facts[i].ReturnsValue {
				ret = "value"
			}
			fmt.Printf("%-30s maxstack=%-3d returns %s\n", m.FullName(), facts[i].MaxStack, ret)
		}
		fmt.Println("verification passed")
		return nil
	}
	return verifyReplay(arg, *workers, *seeds, *timeout, *metricsOut)
}

// verifyReplay fans record→replay accuracy checks over a worker pool:
// every named program (or the whole workload registry for "all") is
// recorded and replayed under several preemption seeds, and the per-run
// divergence reports are aggregated into one summary.
func verifyReplay(arg string, workers, seeds int, timeout time.Duration, metricsOut string) error {
	type target struct {
		name string
		mk   func() *bytecode.Program
	}
	var targets []target
	if arg == "all" {
		for _, n := range workloads.Names() {
			targets = append(targets, target{n, workloads.Registry[n]})
		}
	} else {
		if _, err := cli.LoadProgram(arg); err != nil {
			return err
		}
		// Reload per job so concurrent runs never share a Program value.
		targets = append(targets, target{arg, func() *bytecode.Program {
			p, err := cli.LoadProgram(arg)
			if err != nil {
				panic(err)
			}
			return p
		}})
	}
	var jobs []replaycheck.VerifyJob
	for _, tg := range targets {
		for seed := int64(1); seed <= int64(seeds); seed++ {
			o := replaycheck.Options{Seed: seed, HostRand: seed}
			if tg.name == "sumlines" || tg.name == "workload:sumlines" {
				o.Input = "5\n15\n22\n\n"
			}
			jobs = append(jobs, replaycheck.VerifyJob{Name: tg.name, Prog: tg.mk, Options: o, Stream: true, Timeout: timeout})
		}
	}
	reg := metricsRegistry(metricsOut)
	sum := replaycheck.VerifyPoolObs(jobs, workers, reg)
	fmt.Print(sum.Report())
	if err := dumpMetrics(reg, metricsOut, nil); err != nil {
		return err
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d replays diverged", sum.Failed, sum.Failed+sum.Passed)
	}
	return nil
}

func cmdTraceInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dejavu traceinfo <trace.dvt>")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	container := "flat"
	streamedLen := len(data)
	if trace.IsStream(data) {
		container = "streamed"
		if data, err = cli.ReadTraceFile(args[0]); err != nil {
			return err
		}
	}
	s, err := trace.Summarize(data)
	if err != nil {
		return err
	}
	fmt.Printf("trace    %s (%s container, %d bytes on disk, %d flat)\n",
		args[0], container, streamedLen, s.Stats.TotalBytes)
	fmt.Printf("program  %x\n", s.ProgHash)
	kinds := []trace.Kind{trace.EvSwitch, trace.EvClock, trace.EvNative, trace.EvInput, trace.EvCallback}
	names := []string{"preemptive switches", "clock reads", "native results", "input reads", "callbacks"}
	for i, k := range kinds {
		fmt.Printf("%-20s %6d events %8d bytes\n", names[i], s.Stats.Events[k], s.Stats.BytesByKind[k])
	}
	if n := s.Stats.Events[trace.EvSwitch]; n > 0 {
		fmt.Printf("yield points between preemptions: min=%d avg=%.1f max=%d\n",
			s.SwitchNYP.Min, float64(s.SwitchNYP.Sum)/float64(n), s.SwitchNYP.Max)
	}
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: dejavu info <prog>")
	}
	prog, err := cli.LoadProgram(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("program %s\n", prog.Name)
	fmt.Printf("hash    %x\n", vm.ProgramHash(prog))
	fmt.Printf("entry   %s\n", prog.EntryMethod().FullName())
	instr := 0
	for _, c := range prog.Classes {
		fmt.Printf("class %s: %d fields, %d statics, %d methods\n",
			c.Name, len(c.Fields), len(c.Statics), len(c.Methods))
		for _, m := range c.Methods {
			fmt.Printf("  %s args=%d locals=%d code=%d\n", m.Name, m.NArgs, m.NLocals, len(m.Code))
			instr += len(m.Code)
		}
	}
	fmt.Printf("total: %d classes, %d methods, %d instructions\n",
		len(prog.Classes), len(prog.Methods), instr)
	return nil
}
