package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dejavu/internal/analysis"
	"dejavu/internal/analysis/equiv"
	"dejavu/internal/cli"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

// cmdVet implements `dejavu vet` and returns the process exit code:
//
//	0  every analyzed program is clean (or all findings are allowlisted)
//	1  at least one unexpected finding
//	2  usage or load error
//
// The split makes the command CI-friendly: a pipeline can distinguish
// "the program has determinism hazards" from "the invocation was wrong".
func cmdVet(args []string) int {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	allowFile := fs.String("allow", "", "allowlist file: lines of \"<prog> <analysis>\" naming expected findings")
	strictAllow := fs.Bool("strict-allow", false, "fail when an allowlist entry matches no current finding (stale suppression)")
	equivMode := fs.Bool("equiv", false, "two-program mode: decide replay equivalence of <progA> <progB>")
	analysesFlag := fs.String("analyses", "", "comma-separated subset of analyses to run (default: all of "+strings.Join(analysis.AllAnalyses, ",")+")")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: dejavu vet [-json] [-allow file] [-strict-allow] [-analyses list] <prog|all>
       dejavu vet -equiv [-json] <progA> <progB>

Runs the static replay-determinism analyses over a program (or every
built-in workload for "all") and reports findings with method/pc/line
locations. With -equiv, runs the replay-equivalence certifier instead:
the two programs are equivalent when they agree on every observable
event sequence (yield points, synchronization, natives, output, racy
statics). Exit codes: 0 clean/equivalent, 1 findings, 2 usage/error.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *equivMode {
		return cmdVetEquiv(fs.Args(), *jsonOut)
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	var selected []string
	if *analysesFlag != "" {
		known := map[string]bool{}
		for _, a := range analysis.AllAnalyses {
			known[a] = true
		}
		for _, a := range strings.Split(*analysesFlag, ",") {
			a = strings.TrimSpace(a)
			if !known[a] {
				fmt.Fprintf(os.Stderr, "dejavu vet: unknown analysis %q (have: %s)\n", a, strings.Join(analysis.AllAnalyses, ", "))
				return 2
			}
			selected = append(selected, a)
		}
	}

	allow, err := loadAllowlist(*allowFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu vet:", err)
		return 2
	}

	var progArgs []string
	if fs.Arg(0) == "all" {
		for _, n := range workloads.Names() {
			progArgs = append(progArgs, "workload:"+n)
		}
	} else {
		progArgs = append(progArgs, fs.Arg(0))
	}

	cfg := analysis.Config{
		Natives:        vm.NativeSignature,
		NativeCoverage: vm.NativeCoverage,
		Analyses:       selected,
	}
	unexpected := 0
	used := map[string]bool{}
	analyzed := map[string]bool{}
	var jsonReports []string
	for _, arg := range progArgs {
		prog, err := cli.LoadProgram(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dejavu vet:", err)
			return 2
		}
		analyzed[arg] = true
		r := analysis.Analyze(prog, cfg)
		for _, f := range r.Findings {
			k := allowKey(arg, f.Analysis)
			if allow[k] {
				used[k] = true
			} else {
				unexpected++
			}
		}
		if *jsonOut {
			jsonReports = append(jsonReports, r.JSON())
		} else {
			fmt.Print(r.Text())
		}
	}
	if *jsonOut {
		if len(jsonReports) == 1 {
			fmt.Println(jsonReports[0])
		} else {
			fmt.Println("[" + strings.Join(jsonReports, ",\n") + "]")
		}
	}
	if unexpected > 0 {
		fmt.Fprintf(os.Stderr, "dejavu vet: %d unexpected finding(s)\n", unexpected)
		return 1
	}
	if *strictAllow {
		// Only entries whose program was actually analyzed this run can be
		// judged stale: a single-program invocation must not condemn the
		// rest of the allowlist.
		stale := 0
		for k := range allow {
			progName, _, _ := strings.Cut(k, " ")
			if analyzed[progName] && !used[k] {
				fmt.Fprintf(os.Stderr, "dejavu vet: stale allowlist entry %q matches no current finding\n", k)
				stale++
			}
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "dejavu vet: %d stale allowlist line(s); the suppressed findings were fixed — remove them\n", stale)
			return 1
		}
	}
	return 0
}

// cmdVetEquiv implements `dejavu vet -equiv A B`: run the
// replay-equivalence certifier over two programs and report the first
// diverging observable-event path when they disagree. Exit 0 equivalent,
// 1 not equivalent, 2 usage/error.
func cmdVetEquiv(args []string, jsonOut bool) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dejavu vet -equiv [-json] <progA> <progB>")
		return 2
	}
	a, err := cli.LoadProgram(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu vet:", err)
		return 2
	}
	b, err := cli.LoadProgram(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu vet:", err)
		return 2
	}
	res := equiv.Check(a, b, vm.NativeSignature)
	if jsonOut {
		fmt.Println(res.Report.JSON())
	} else if res.Equivalent {
		fmt.Printf("%s and %s are replay-equivalent (%d observable events checked)\n",
			args[0], args[1], res.EventsChecked)
	} else {
		fmt.Print(res.Report.Text())
	}
	if !res.Equivalent {
		return 1
	}
	return 0
}

func allowKey(prog, analysisName string) string { return prog + " " + analysisName }

// loadAllowlist parses an allowlist file. Each non-comment line reads
// "<prog> <analysis>", meaning findings of that analysis in that program
// are expected (e.g. the intentionally racy demo workloads).
func loadAllowlist(path string) (map[string]bool, error) {
	allow := map[string]bool{}
	if path == "" {
		return allow, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<prog> <analysis>\", got %q", path, i+1, line)
		}
		allow[allowKey(fields[0], fields[1])] = true
	}
	return allow, nil
}
