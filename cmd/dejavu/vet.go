package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dejavu/internal/analysis"
	"dejavu/internal/cli"
	"dejavu/internal/vm"
	"dejavu/internal/workloads"
)

// cmdVet implements `dejavu vet` and returns the process exit code:
//
//	0  every analyzed program is clean (or all findings are allowlisted)
//	1  at least one unexpected finding
//	2  usage or load error
//
// The split makes the command CI-friendly: a pipeline can distinguish
// "the program has determinism hazards" from "the invocation was wrong".
func cmdVet(args []string) int {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	allowFile := fs.String("allow", "", "allowlist file: lines of \"<prog> <analysis>\" naming expected findings")
	analysesFlag := fs.String("analyses", "", "comma-separated subset of analyses to run (default: all of "+strings.Join(analysis.AllAnalyses, ",")+")")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: dejavu vet [-json] [-allow file] [-analyses list] <prog|all>

Runs the static replay-determinism analyses over a program (or every
built-in workload for "all") and reports findings with method/pc/line
locations. Exit codes: 0 clean, 1 findings, 2 usage/error.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	var selected []string
	if *analysesFlag != "" {
		known := map[string]bool{}
		for _, a := range analysis.AllAnalyses {
			known[a] = true
		}
		for _, a := range strings.Split(*analysesFlag, ",") {
			a = strings.TrimSpace(a)
			if !known[a] {
				fmt.Fprintf(os.Stderr, "dejavu vet: unknown analysis %q (have: %s)\n", a, strings.Join(analysis.AllAnalyses, ", "))
				return 2
			}
			selected = append(selected, a)
		}
	}

	allow, err := loadAllowlist(*allowFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu vet:", err)
		return 2
	}

	var progArgs []string
	if fs.Arg(0) == "all" {
		for _, n := range workloads.Names() {
			progArgs = append(progArgs, "workload:"+n)
		}
	} else {
		progArgs = append(progArgs, fs.Arg(0))
	}

	cfg := analysis.Config{
		Natives:        vm.NativeSignature,
		NativeCoverage: vm.NativeCoverage,
		Analyses:       selected,
	}
	unexpected := 0
	var jsonReports []string
	for _, arg := range progArgs {
		prog, err := cli.LoadProgram(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dejavu vet:", err)
			return 2
		}
		r := analysis.Analyze(prog, cfg)
		for _, f := range r.Findings {
			if !allow[allowKey(arg, f.Analysis)] {
				unexpected++
			}
		}
		if *jsonOut {
			jsonReports = append(jsonReports, r.JSON())
		} else {
			fmt.Print(r.Text())
		}
	}
	if *jsonOut {
		if len(jsonReports) == 1 {
			fmt.Println(jsonReports[0])
		} else {
			fmt.Println("[" + strings.Join(jsonReports, ",\n") + "]")
		}
	}
	if unexpected > 0 {
		fmt.Fprintf(os.Stderr, "dejavu vet: %d unexpected finding(s)\n", unexpected)
		return 1
	}
	return 0
}

func allowKey(prog, analysisName string) string { return prog + " " + analysisName }

// loadAllowlist parses an allowlist file. Each non-comment line reads
// "<prog> <analysis>", meaning findings of that analysis in that program
// are expected (e.g. the intentionally racy demo workloads).
func loadAllowlist(path string) (map[string]bool, error) {
	allow := map[string]bool{}
	if path == "" {
		return allow, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<prog> <analysis>\", got %q", path, i+1, line)
		}
		allow[allowKey(fields[0], fields[1])] = true
	}
	return allow, nil
}
