package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dejavu/internal/bytecode"
	"dejavu/internal/cli"
)

// cmdOpt implements `dejavu opt` and returns the process exit code:
//
//	0  the optimized program was certified replay-equivalent
//	1  the pipeline was refused (input ships unoptimized)
//	2  usage or load error
func cmdOpt(args []string) int {
	fs := flag.NewFlagSet("opt", flag.ContinueOnError)
	out := fs.String("o", "", "write the resulting program image (.dva) to this file")
	jsonOut := fs.Bool("json", false, "emit the optimization report as JSON")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: dejavu opt [-o out.dva] [-json] <prog>

Runs the certified bytecode optimizer: conservative passes (constant
folding, copy propagation, dead-store elimination, branch
simplification, unreachable code, pop sinking, redundant loads) that
must preserve the program's observable-event language exactly. The
replay-equivalence certifier proves they did; a refused pipeline writes
the input unchanged and reports the divergence with method/pc/line.
Exit codes: 0 certified, 1 refused, 2 usage/error.`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	prog, err := cli.LoadProgram(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu opt:", err)
		return 2
	}
	res, err := cli.OptimizeProgram(prog, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dejavu opt:", err)
		return 2
	}
	if *out != "" {
		if err := os.WriteFile(*out, bytecode.EncodeImage(res.Program), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dejavu opt:", err)
			return 2
		}
	}
	if *jsonOut {
		type report struct {
			Program       string `json:"program"`
			Certified     bool   `json:"certified"`
			InstrsBefore  int    `json:"instrs_before"`
			InstrsAfter   int    `json:"instrs_after"`
			Rounds        int    `json:"rounds"`
			EventsChecked int    `json:"events_checked"`
			Passes        any    `json:"passes"`
		}
		b, _ := json.MarshalIndent(report{
			Program:       prog.Name,
			Certified:     res.Certified,
			InstrsBefore:  res.InstrsBefore,
			InstrsAfter:   res.InstrsAfter,
			Rounds:        res.Rounds,
			EventsChecked: res.EventsChecked,
			Passes:        res.Passes,
		}, "", "  ")
		fmt.Println(string(b))
		if !res.Certified {
			fmt.Println(res.Report.JSON())
		}
	} else {
		fmt.Printf("%s: %d -> %d instructions in %d round(s), %d observable events certified\n",
			prog.Name, res.InstrsBefore, res.InstrsAfter, res.Rounds, res.EventsChecked)
		for _, ps := range res.Passes {
			if ps.Applied > 0 {
				fmt.Printf("  %-12s %d method rewrite(s)\n", ps.Name, ps.Applied)
			}
		}
		if !res.Certified {
			fmt.Printf("REFUSED: shipping the input unoptimized\n%s", res.Report.Text())
		}
	}
	if !res.Certified {
		return 1
	}
	return 0
}
